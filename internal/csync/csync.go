// Package csync implements a fail-aware clock synchronization service,
// the layer directly below the membership protocol in the timewheel stack
// (paper Figure 1).
//
// The service the membership protocol needs has two guarantees (paper §2,
// citing Fetzer & Cristian's fail-aware clock synchronization):
//
//  1. whenever the process is synchronized, its adjusted clock deviates
//     from any other synchronized clock by at most epsilon, and
//  2. the process always *knows* whether it is synchronized
//     (fail-awareness) — a process that cannot keep its clock
//     synchronized leaves the group and rejoins once it can.
//
// This implementation is a pragmatic master-based variant: every process
// broadcasts a beacon carrying its synchronized-clock reading once per
// Interval; each process adopts as master the lowest-ID process it has
// heard from recently (possibly itself) and slews its correction toward
// the master's readings using the midpoint delay assumption. A process
// that has not heard a timely majority recently declares itself
// unsynchronized. The original protocol [Fetzer & Cristian 1996] obtains
// tighter bounds from round-trip measurements; the substitution preserves
// the two guarantees above, which are all the membership layer consumes.
package csync

import (
	"fmt"

	"timewheel/internal/clock"
	"timewheel/internal/model"
)

// Beacon is the sync service's periodic broadcast.
type Beacon struct {
	From model.ProcessID
	// Reading is the sender's adjusted-clock value at send time.
	Reading model.Time
	// Synced reports whether the sender considered itself synchronized
	// when it sent the beacon; readings from unsynchronized senders are
	// never adopted.
	Synced bool
}

// Config tunes the synchronization service.
type Config struct {
	// Interval between beacons.
	Interval model.Duration
	// Timeout after which a silent peer is considered unreachable.
	// Should be a small multiple of Interval plus delta.
	Timeout model.Duration
	// MinFresh is the minimum number of recently-heard processes
	// (including self) required to claim synchronization; the membership
	// protocol's delta-stability wants a majority of the team.
	MinFresh int
}

// DefaultConfig derives a configuration from the model parameters: beacon
// twice per D, tolerate two consecutive losses, require a majority.
func DefaultConfig(p model.Params) Config {
	iv := p.D / 2
	if iv <= 0 {
		iv = model.Millisecond
	}
	return Config{
		Interval: iv,
		Timeout:  3*iv + p.Delta,
		MinFresh: p.Majority(),
	}
}

// Service is one process's clock synchronization state machine. It is
// driven externally: the owner calls Tick each Interval (sending the
// returned beacon) and OnBeacon for each received beacon. The service is
// not safe for concurrent use; drive it from one goroutine or the
// simulation loop.
type Service struct {
	id     model.ProcessID
	params model.Params
	cfg    Config
	adj    *clock.Adjusted

	// lastHeard maps peer -> real receive time of its freshest beacon.
	lastHeard map[model.ProcessID]model.Time

	// assumedDelay is the midpoint one-way delay assumption.
	assumedDelay model.Duration

	// lastAdopt is the real time the last master sample was adopted;
	// a follower is synchronized only while this is fresh.
	lastAdopt model.Time

	resyncs uint64
	desyncs uint64
	adopted uint64

	// Round-trip mode state (roundtrip.go).
	roundTripOnly  bool
	probeNonce     uint64
	rejectedRounds uint64
}

// New creates the service for process id adjusting clock adj.
func New(id model.ProcessID, params model.Params, cfg Config, adj *clock.Adjusted) *Service {
	if cfg.Interval <= 0 {
		cfg = DefaultConfig(params)
	}
	return &Service{
		id:           id,
		params:       params,
		cfg:          cfg,
		adj:          adj,
		lastHeard:    make(map[model.ProcessID]model.Time),
		assumedDelay: params.Delta / 2,
		lastAdopt:    -1 << 62,
	}
}

// Clock returns the adjusted clock the service maintains.
func (s *Service) Clock() *clock.Adjusted { return s.adj }

// Synced reports whether the process currently believes its clock is
// synchronized (fail-awareness guarantee 2).
func (s *Service) Synced() bool { return s.adj.Synced }

// Now returns the synchronized-clock reading at real time now.
func (s *Service) Now(now model.Time) model.Time { return s.adj.Read(now) }

// Master returns the process this service currently follows: the
// lowest-ID process heard within Timeout, or the service itself if it is
// lowest. Returns NoProcess when nothing is fresh and the service's own
// rank is unknown (never happens in practice: self is always fresh).
func (s *Service) Master(now model.Time) model.ProcessID {
	best := s.id
	for p, at := range s.lastHeard {
		if now.Sub(at) <= s.cfg.Timeout && p < best {
			best = p
		}
	}
	return best
}

// freshCount counts processes heard within Timeout, plus self.
func (s *Service) freshCount(now model.Time) int {
	n := 1
	for p, at := range s.lastHeard {
		if p != s.id && now.Sub(at) <= s.cfg.Timeout {
			n++
		}
	}
	return n
}

// Tick advances the service at real time now and returns the beacon to
// broadcast. It re-evaluates fail-awareness: the process is synchronized
// iff it has heard a timely majority recently AND it either is the master
// (its clock defines the base) or has adopted a fresh master sample;
// otherwise it declares itself unsynchronized.
func (s *Service) Tick(now model.Time) Beacon {
	ok := s.freshCount(now) >= s.cfg.MinFresh &&
		(s.Master(now) == s.id || now.Sub(s.lastAdopt) <= s.cfg.Timeout)
	if ok {
		if !s.adj.Synced {
			s.resyncs++
		}
		s.adj.Synced = true
	} else {
		if s.adj.Synced {
			s.desyncs++
		}
		s.adj.Desync()
	}
	return Beacon{From: s.id, Reading: s.adj.Read(now), Synced: s.adj.Synced}
}

// OnBeacon processes a beacon received at real time now.
func (s *Service) OnBeacon(now model.Time, b Beacon) {
	if b.From == s.id {
		return
	}
	s.lastHeard[b.From] = now
	// Adopt the master's time base. Only synchronized masters are
	// followed, and only if the master outranks us; if we are the
	// master, our own clock is the base. In round-trip-only mode,
	// beacons serve election and freshness but corrections come solely
	// from measured probe/echo rounds.
	if s.roundTripOnly || !b.Synced || b.From >= s.id || b.From != s.Master(now) {
		return
	}
	local := s.adj.Read(now)
	// The beacon left the master assumedDelay ago (midpoint assumption),
	// so the master's clock now reads approximately Reading+assumedDelay.
	sample := b.Reading.Add(s.assumedDelay).Sub(local)
	s.adj.Correction += sample
	s.lastAdopt = now
	s.adopted++
}

// Forget drops all peer freshness state, as after a crash/recovery: the
// recovered process must reacquire a majority before claiming
// synchronization.
func (s *Service) Forget() {
	s.lastHeard = make(map[model.ProcessID]model.Time)
	s.lastAdopt = -1 << 62
	s.adj.Desync()
}

// Stats reports lifetime counters: times synchronization was regained,
// lost, and master samples adopted.
func (s *Service) Stats() (resyncs, desyncs, adopted uint64) {
	return s.resyncs, s.desyncs, s.adopted
}

func (s *Service) String() string {
	return fmt.Sprintf("csync(%v %v)", s.id, s.adj)
}
