package csync

import (
	"testing"

	"timewheel/internal/clock"
	"timewheel/internal/model"
	"timewheel/internal/sim"
)

// rtCluster wires sync services that use probe/echo round trips instead
// of one-way beacon adoption (beacons still run for master election and
// freshness).
type rtCluster struct {
	*cluster
	bounds []model.Duration // adopted error bounds
}

func newRTCluster(n int, seed int64) *rtCluster {
	c := &rtCluster{cluster: newCluster(n, seed)}
	// Fail-aware sync only achieves epsilon when the network allows it:
	// a round is adopted only if rtt/2 <= epsilon, so the test network's
	// round trips must fit inside 2*epsilon.
	c.minD = c.params.Epsilon / 4
	c.maxD = c.params.Epsilon - 1
	for _, svc := range c.svcs {
		svc.SetRoundTripOnly(true)
	}
	// Followers probe the master every interval.
	for i := range c.svcs {
		i := i
		svc := c.svcs[i]
		var probe func()
		probe = func() {
			if !c.crashed[i] && !c.isolated[i] {
				if p, master, ok := svc.MakeProbe(c.s.Now()); ok {
					d1 := c.delay()
					m := int(master)
					c.s.After(d1, func() {
						if c.crashed[m] || c.isolated[m] {
							return
						}
						echo := c.svcs[m].OnProbe(c.s.Now(), p)
						d2 := c.delay()
						c.s.After(d2, func() {
							if !c.crashed[i] && !c.isolated[i] {
								if bound, adopted := svc.OnEcho(c.s.Now(), echo); adopted {
									c.bounds = append(c.bounds, bound)
								}
							}
						})
					})
				}
			}
			c.s.After(svc.cfg.Interval, probe)
		}
		c.s.Schedule(model.Time(int64(i)*499+10), probe)
	}
	return c
}

func (c *rtCluster) delay() model.Duration {
	return c.minD + model.Duration(c.s.Rand().Int63n(int64(c.maxD-c.minD)+1))
}

func TestRoundTripSynchronizes(t *testing.T) {
	c := newRTCluster(5, 81)
	c.warmup()
	for i, svc := range c.svcs {
		if !svc.Synced() {
			t.Errorf("p%d not synchronized", i)
		}
	}
	if len(c.bounds) == 0 {
		t.Fatalf("no round-trip samples adopted")
	}
	// Every adopted bound is within epsilon by construction.
	for _, b := range c.bounds {
		if b > c.params.Epsilon {
			t.Fatalf("adopted bound %v exceeds epsilon %v", b, c.params.Epsilon)
		}
	}
}

func TestRoundTripDeviationWithinMeasuredBounds(t *testing.T) {
	c := newRTCluster(4, 82)
	c.warmup()
	for k := 0; k < 40; k++ {
		c.s.RunFor(c.svcs[0].cfg.Interval)
		// With round trips the deviation stays within epsilon plus the
		// drift accumulated over one interval.
		bound := c.params.Epsilon + 2*model.Duration(c.params.RhoPPM*int64(c.svcs[0].cfg.Interval)/1_000_000) + model.Millisecond
		if dev := c.maxDeviation(); dev > bound {
			t.Fatalf("deviation %v exceeds %v", dev, bound)
		}
	}
}

func TestRoundTripRejectsSlowRounds(t *testing.T) {
	params := model.DefaultParams(3)
	follower := New(1, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{Offset: 5000}))
	master := New(0, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{}))
	master.adj.Apply(0)

	// Make p0 the follower's master.
	follower.OnBeacon(0, Beacon{From: 0, Reading: 0, Synced: true})

	p, to, ok := follower.MakeProbe(10)
	if !ok || to != 0 {
		t.Fatalf("probe: %v %v", to, ok)
	}
	echo := master.OnProbe(20, p)

	// The echo arrives after a round trip far beyond 2*epsilon: the
	// reading's error bound is unusable and must be rejected.
	lateArrival := model.Time(10).Add(3 * params.Epsilon * 2)
	bound, adopted := follower.OnEcho(lateArrival, echo)
	if adopted {
		t.Fatalf("slow round adopted (bound %v)", bound)
	}
	if follower.RejectedRounds() != 1 {
		t.Fatalf("rejected counter: %d", follower.RejectedRounds())
	}
	if bound <= params.Epsilon {
		t.Fatalf("bound %v should exceed epsilon", bound)
	}

	// A fast round is adopted and corrects the 5ms offset.
	p2, _, _ := follower.MakeProbe(1000)
	echo2 := master.OnProbe(1001, p2)
	bound2, adopted2 := follower.OnEcho(1002, echo2)
	if !adopted2 {
		t.Fatalf("fast round rejected (bound %v)", bound2)
	}
	// Follower's corrected clock now reads close to the master's.
	fRead := follower.adj.Read(2000)
	mRead := master.adj.Read(2000)
	diff := fRead.Sub(mRead)
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*bound2+model.Millisecond {
		t.Fatalf("post-round deviation %v too large (bound %v)", diff, bound2)
	}
}

func TestRoundTripMasterDoesNotProbe(t *testing.T) {
	params := model.DefaultParams(3)
	svc := New(0, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{}))
	if _, _, ok := svc.MakeProbe(0); ok {
		t.Fatalf("master produced a probe")
	}
}

func TestRoundTripIgnoresNonMasterEchoes(t *testing.T) {
	params := model.DefaultParams(3)
	follower := New(2, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{}))
	follower.OnBeacon(0, Beacon{From: 0, Reading: 0, Synced: true})
	follower.OnBeacon(0, Beacon{From: 1, Reading: 0, Synced: true})
	// An echo from p1 while p0 is the master: freshness noted, reading
	// not adopted.
	_, adopted := follower.OnEcho(10, Echo{From: 1, To: 2, SentAtLocal: 5, Reading: 123, Synced: true})
	if adopted {
		t.Fatalf("non-master echo adopted")
	}
	// Echo from an unsynchronized master: rejected too.
	_, adopted = follower.OnEcho(20, Echo{From: 0, To: 2, SentAtLocal: 15, Reading: 123, Synced: false})
	if adopted {
		t.Fatalf("unsynced master echo adopted")
	}
}

func TestRoundTripNegativeRTTRejected(t *testing.T) {
	params := model.DefaultParams(3)
	follower := New(1, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{}))
	follower.OnBeacon(0, Beacon{From: 0, Reading: 0, Synced: true})
	// SentAtLocal in the future of the receive clock (clock stepped).
	if _, adopted := follower.OnEcho(10, Echo{From: 0, To: 1, SentAtLocal: 99999, Reading: 5, Synced: true}); adopted {
		t.Fatalf("negative-RTT round adopted")
	}
}

func TestProbeNoncesIncrease(t *testing.T) {
	params := model.DefaultParams(3)
	svc := New(1, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{}))
	svc.OnBeacon(0, Beacon{From: 0, Reading: 0, Synced: true})
	p1, _, _ := svc.MakeProbe(1)
	p2, _, _ := svc.MakeProbe(2)
	if p2.Nonce <= p1.Nonce {
		t.Fatalf("nonces not increasing: %d %d", p1.Nonce, p2.Nonce)
	}
}

// sim import keepalive for the shared cluster helper.
var _ = sim.New
