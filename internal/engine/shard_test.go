package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"timewheel/internal/member"
)

func TestShardedDispatchAndStop(t *testing.T) {
	p := NewPool(2, 1024)
	defer p.Close()

	var count atomic.Uint64
	e := p.Engine(0, func(Event) { count.Add(1) })
	const n = 1000
	for i := 0; i < n; i++ {
		for !e.Post(Event{Type: EventType(i % NumEventTypes)}) {
			runtime.Gosched()
		}
	}
	e.Stop() // barrier: everything queued must be dispatched before return
	if count.Load() != n {
		t.Fatalf("handled %d of %d after Stop", count.Load(), n)
	}
	if e.Handled() != n {
		t.Fatalf("Handled() = %d, want %d", e.Handled(), n)
	}
	if e.Post(Event{}) {
		t.Fatal("Post accepted after Stop")
	}
	if e.QueueLen() != 0 {
		t.Fatalf("QueueLen %d after drain", e.QueueLen())
	}
}

// Per-engine dispatch must be strictly sequential even with many
// producers: the handler asserts it is never entered concurrently and
// that events arrive in per-producer FIFO order.
func TestShardedSequentialPerEngine(t *testing.T) {
	p := NewPool(4, 4096)
	defer p.Close()

	var inHandler atomic.Int32
	var last [8]int // per-producer last sequence seen
	h := func(ev Event) {
		if inHandler.Add(1) != 1 {
			t.Error("handler entered concurrently")
		}
		producer := int(ev.Type)
		seq := int(ev.Timer)
		if seq <= last[producer] {
			t.Errorf("producer %d: seq %d after %d (FIFO broken)", producer, seq, last[producer])
		}
		last[producer] = seq
		inHandler.Add(-1)
	}
	e := p.Engine(1, h)

	var wg sync.WaitGroup
	const producers, perProducer = 8, 255 // TimerID is a byte: seq must fit
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 1; i <= perProducer; i++ {
				ev := Event{Type: EventType(pr), Timer: member.TimerID(i)}
				for !e.Post(ev) {
					runtime.Gosched()
				}
			}
		}(pr)
	}
	wg.Wait()
	e.Stop()
	if e.Handled() != producers*perProducer {
		t.Fatalf("handled %d of %d", e.Handled(), producers*perProducer)
	}
}

// Engines on different shards run concurrently; engines on the same
// shard serialize. We only assert the concurrency half: with one engine
// per shard and a handler that blocks until all shards are inside, the
// pool must make progress (a serialized pool would deadlock).
func TestShardedCrossShardParallel(t *testing.T) {
	const shards = 3
	p := NewPool(shards, 64)
	defer p.Close()

	var barrier sync.WaitGroup
	barrier.Add(shards)
	engs := make([]*Sharded, shards)
	for i := range engs {
		engs[i] = p.Engine(i, func(Event) {
			barrier.Done()
			barrier.Wait() // released only when all shards are inside handlers
		})
	}
	for _, e := range engs {
		if !e.Post(Event{Type: EvCommand}) {
			t.Fatal("post rejected")
		}
	}
	done := make(chan struct{})
	go func() {
		for _, e := range engs {
			e.Stop()
		}
		close(done)
	}()
	<-done
}

func TestShardedDropWhenFull(t *testing.T) {
	p := NewPool(1, 4)
	block := make(chan struct{})
	e := p.Engine(0, func(Event) { <-block })
	posted := 0
	for i := 0; i < 64; i++ {
		if e.Post(Event{}) {
			posted++
		}
	}
	if e.Dropped() == 0 {
		t.Fatal("expected drops with a full shard queue")
	}
	if uint64(posted)+e.Dropped() != 64 {
		t.Fatalf("posted %d + dropped %d != 64", posted, e.Dropped())
	}
	close(block)
	e.Stop()
	p.Close()
	if e.Handled() != uint64(posted) {
		t.Fatalf("handled %d, want %d", e.Handled(), posted)
	}
}
