// Package engine provides the two concurrent event-demultiplexing
// architectures the paper's §5 compares for implementing the timewheel
// group communication service:
//
//   - EventLoop: a single-threaded event loop performing event
//     demultiplexing and handler dispatch — the architecture the authors
//     chose ("at any time, at most one event is processed and therefore
//     no explicit synchronization ... is required");
//   - Threaded: a thread per event type with explicit scheduling — the
//     architecture the authors measured first and rejected because "the
//     performance overhead associated with creating and maintaining this
//     large number of threads is large".
//
// Both engines deliver events to a single handler function; Threaded
// reproduces the paper's explicit scheduling by serialising handler
// execution with a mutex after the per-type goroutine hand-off, so the
// protocol core needs no internal locking under either engine (at the
// cost, for Threaded, of one goroutine wakeup and one lock hand-off per
// event).
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"timewheel/internal/member"
	"timewheel/internal/wire"
)

// EventType classifies events for the per-type threads of the Threaded
// engine.
type EventType uint8

const (
	// EvMessage0..6 map the seven wire message kinds.
	EvProposal EventType = iota
	EvDecision
	EvNoDecision
	EvJoin
	EvReconfig
	EvNack
	EvState
	// EvTimerExpect, EvTimerDecide, EvTimerSlot map the three timers.
	EvTimerExpect
	EvTimerDecide
	EvTimerSlot
	// EvCommand is an application command (propose, inspect) injected
	// into the protocol goroutine.
	EvCommand

	numEventTypes
)

// NumEventTypes is the number of distinct event types (the paper's
// rationale for the thread-count overhead).
const NumEventTypes = int(numEventTypes)

// Event is one unit of work for an engine.
type Event struct {
	Type  EventType
	Msg   wire.Message
	Timer member.TimerID
	Cmd   func()
	// Due is the wall-clock deadline a timer event was armed for (zero
	// for non-timer events). The dispatching layer compares it against
	// the handling time for fail-aware timer-lateness accounting: the
	// gap covers both OS-timer slip and queueing delay behind a stalled
	// handler.
	Due time.Time
	// Posted is when the event entered the queue (zero unless the
	// posting layer stamps it). The dispatching layer uses it to sample
	// queue-wait as local scheduling noise for the adaptive timeout
	// estimator — unlike Due it exists for every event type, so the
	// noise estimate tracks congestion, not just timer slip.
	Posted time.Time
}

// TypeOfMessage maps a wire message to its event type.
func TypeOfMessage(m wire.Message) EventType {
	switch m.Kind() {
	case wire.KindProposal:
		return EvProposal
	case wire.KindDecision:
		return EvDecision
	case wire.KindNoDecision:
		return EvNoDecision
	case wire.KindJoin:
		return EvJoin
	case wire.KindReconfig:
		return EvReconfig
	case wire.KindNack:
		return EvNack
	default:
		return EvState
	}
}

// TypeOfTimer maps a timer to its event type.
func TypeOfTimer(id member.TimerID) EventType {
	switch id {
	case member.TimerExpect:
		return EvTimerExpect
	case member.TimerDecide:
		return EvTimerDecide
	default:
		return EvTimerSlot
	}
}

// Handler consumes events. Engines guarantee at most one Handler call
// runs at a time.
type Handler func(Event)

// Engine is a concurrent event demultiplexer.
type Engine interface {
	// Post enqueues an event from any goroutine without blocking and
	// reports whether it was accepted. When the engine's bounded queue
	// is full (or the engine is stopped) the event is dropped and the
	// drop is counted: queue overflow is an in-model omission failure,
	// made observable instead of stalling the caller — a transport
	// receive goroutine or timer callback must never block on a slow
	// protocol core.
	Post(Event) bool
	// Stop shuts the engine down and waits for in-flight handlers.
	Stop()
	// Handled returns the number of events dispatched so far.
	Handled() uint64
	// Dropped returns the number of events rejected by a full queue
	// while the engine was running (posts after Stop are not counted —
	// shutdown is not an overload signal).
	Dropped() uint64
	// QueueLen returns the number of events currently queued and not
	// yet dispatched — the backlog an observer should watch to see a
	// stalling handler before the queue overflows. Safe from any
	// goroutine; the value is instantaneously stale by nature.
	QueueLen() int
}

// --- Event-based engine ----------------------------------------------------

// EventLoop is the single-goroutine engine: one channel, sequential
// dispatch, no locks on the hot path.
type EventLoop struct {
	ch      chan Event
	handler Handler
	done    chan struct{}
	stopped atomic.Bool
	handled atomic.Uint64
	dropped atomic.Uint64
	wg      sync.WaitGroup
}

// NewEventLoop starts the loop with the given queue depth (0 means 1024).
func NewEventLoop(h Handler, depth int) *EventLoop {
	if depth <= 0 {
		depth = 1024
	}
	e := &EventLoop{
		ch:      make(chan Event, depth),
		handler: h,
		done:    make(chan struct{}),
	}
	e.wg.Add(1)
	go e.run()
	return e
}

func (e *EventLoop) run() {
	defer e.wg.Done()
	for {
		select {
		case ev := <-e.ch:
			e.handler(ev)
			e.handled.Add(1)
		case <-e.done:
			// Drain whatever is already queued, then exit.
			for {
				select {
				case ev := <-e.ch:
					e.handler(ev)
					e.handled.Add(1)
				default:
					return
				}
			}
		}
	}
}

// Post implements Engine.
func (e *EventLoop) Post(ev Event) bool {
	if e.stopped.Load() {
		return false
	}
	select {
	case e.ch <- ev:
		return true
	default:
		e.dropped.Add(1)
		return false
	}
}

// Stop implements Engine.
func (e *EventLoop) Stop() {
	if e.stopped.Swap(true) {
		return
	}
	close(e.done)
	e.wg.Wait()
}

// Handled implements Engine.
func (e *EventLoop) Handled() uint64 { return e.handled.Load() }

// Dropped implements Engine.
func (e *EventLoop) Dropped() uint64 { return e.dropped.Load() }

// QueueLen implements Engine.
func (e *EventLoop) QueueLen() int { return len(e.ch) }

// --- Thread-based engine -----------------------------------------------------

// Threaded is the thread-per-event-type engine: each event type has its
// own goroutine and queue; handler execution is serialised by a mutex
// (the paper's "we schedule these threads explicitly in the protocol
// code"). Cross-type FIFO ordering is lost — one of the reasons the
// paper's authors found the architecture harder to reason about.
type Threaded struct {
	chans   [numEventTypes]chan Event
	handler Handler
	mu      sync.Mutex
	done    chan struct{}
	stopped atomic.Bool
	handled atomic.Uint64
	dropped atomic.Uint64
	wg      sync.WaitGroup
}

// NewThreaded starts one goroutine per event type with the given
// per-type queue depth (0 means 256).
func NewThreaded(h Handler, depth int) *Threaded {
	if depth <= 0 {
		depth = 256
	}
	t := &Threaded{handler: h, done: make(chan struct{})}
	for i := range t.chans {
		t.chans[i] = make(chan Event, depth)
		t.wg.Add(1)
		go t.run(t.chans[i])
	}
	return t
}

func (t *Threaded) run(ch chan Event) {
	defer t.wg.Done()
	for {
		select {
		case ev := <-ch:
			t.dispatch(ev)
		case <-t.done:
			for {
				select {
				case ev := <-ch:
					t.dispatch(ev)
				default:
					return
				}
			}
		}
	}
}

func (t *Threaded) dispatch(ev Event) {
	// Explicit scheduling: only one event type's thread may run the
	// protocol code at a time.
	t.mu.Lock()
	t.handler(ev)
	t.mu.Unlock()
	t.handled.Add(1)
}

// Post implements Engine.
func (t *Threaded) Post(ev Event) bool {
	if t.stopped.Load() {
		return false
	}
	if ev.Type >= numEventTypes {
		ev.Type = EvCommand
	}
	select {
	case t.chans[ev.Type] <- ev:
		return true
	default:
		t.dropped.Add(1)
		return false
	}
}

// Stop implements Engine.
func (t *Threaded) Stop() {
	if t.stopped.Swap(true) {
		return
	}
	close(t.done)
	t.wg.Wait()
}

// Handled implements Engine.
func (t *Threaded) Handled() uint64 { return t.handled.Load() }

// Dropped implements Engine.
func (t *Threaded) Dropped() uint64 { return t.dropped.Load() }

// QueueLen implements Engine. It sums the per-type queues.
func (t *Threaded) QueueLen() int {
	n := 0
	for i := range t.chans {
		n += len(t.chans[i])
	}
	return n
}

var (
	_ Engine = (*EventLoop)(nil)
	_ Engine = (*Threaded)(nil)
)
