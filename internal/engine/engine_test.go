package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timewheel/internal/member"
	"timewheel/internal/wire"
)

func waitHandled(t *testing.T, e Engine, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.Handled() < want {
		if time.Now().After(deadline) {
			t.Fatalf("handled %d of %d before timeout", e.Handled(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func engines(h Handler) map[string]Engine {
	return map[string]Engine{
		"event-loop": NewEventLoop(h, 0),
		"threaded":   NewThreaded(h, 0),
	}
}

func TestAllEventsDispatched(t *testing.T) {
	for name := range engines(nil) {
		name := name
		t.Run(name, func(t *testing.T) {
			var count atomic.Uint64
			var e Engine
			h := func(Event) { count.Add(1) }
			if name == "event-loop" {
				e = NewEventLoop(h, 10_000)
			} else {
				e = NewThreaded(h, 10_000)
			}
			const n = 10_000
			for i := 0; i < n; i++ {
				if !e.Post(Event{Type: EventType(i % NumEventTypes)}) {
					t.Fatalf("post %d rejected with depth %d", i, n)
				}
			}
			waitHandled(t, e, n)
			e.Stop()
			if count.Load() != n {
				t.Fatalf("handled %d", count.Load())
			}
			if e.Dropped() != 0 {
				t.Fatalf("dropped %d with a large enough queue", e.Dropped())
			}
		})
	}
}

func TestHandlerNeverRunsConcurrently(t *testing.T) {
	for name := range engines(nil) {
		name := name
		t.Run(name, func(t *testing.T) {
			var inHandler atomic.Int32
			var overlaps atomic.Int32
			h := func(Event) {
				if inHandler.Add(1) > 1 {
					overlaps.Add(1)
				}
				for i := 0; i < 50; i++ {
					_ = i * i
				}
				inHandler.Add(-1)
			}
			var e Engine
			const posters, per = 8, 500
			if name == "event-loop" {
				e = NewEventLoop(h, posters*per)
			} else {
				e = NewThreaded(h, posters*per)
			}
			var wg sync.WaitGroup
			for p := 0; p < posters; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						e.Post(Event{Type: EventType((p + i) % NumEventTypes)})
					}
				}()
			}
			wg.Wait()
			waitHandled(t, e, posters*per)
			e.Stop()
			if overlaps.Load() != 0 {
				t.Fatalf("%d concurrent handler executions", overlaps.Load())
			}
		})
	}
}

func TestEventLoopPreservesFIFO(t *testing.T) {
	var got []int
	const n = 1000
	e := NewEventLoop(func(ev Event) { got = append(got, int(ev.Type)) }, n)
	for i := 0; i < n; i++ {
		e.Post(Event{Type: EventType(i % NumEventTypes)})
	}
	waitHandled(t, e, n)
	e.Stop()
	for i, v := range got {
		if v != i%NumEventTypes {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestThreadedPreservesPerTypeFIFO(t *testing.T) {
	perType := make(map[EventType][]int)
	const n = 3000
	e := NewThreaded(func(ev Event) {
		// The engine serialises handler execution, so no extra locking.
		ev.Cmd()
	}, n)
	for i := 0; i < n; i++ {
		i := i
		ty := EventType(i % NumEventTypes)
		e.Post(Event{Type: ty, Cmd: func() { perType[ty] = append(perType[ty], i) }})
	}
	waitHandled(t, e, n)
	e.Stop()
	for ty, seq := range perType {
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Fatalf("type %d: per-type FIFO broken", ty)
			}
		}
	}
}

func TestStopIsIdempotentAndDropsLatePosts(t *testing.T) {
	for name := range engines(nil) {
		name := name
		t.Run(name, func(t *testing.T) {
			var e Engine
			h := func(Event) {}
			if name == "event-loop" {
				e = NewEventLoop(h, 0)
			} else {
				e = NewThreaded(h, 0)
			}
			e.Post(Event{})
			e.Stop()
			e.Stop() // idempotent
			before := e.Handled()
			if e.Post(Event{}) {
				t.Fatalf("post after stop was accepted")
			}
			time.Sleep(time.Millisecond)
			if e.Handled() != before {
				t.Fatalf("post after stop was handled")
			}
			if e.Dropped() != 0 {
				t.Fatalf("post after stop counted as an overflow drop")
			}
		})
	}
}

func TestPostOnFullQueueDropsAndCounts(t *testing.T) {
	for name := range engines(nil) {
		name := name
		t.Run(name, func(t *testing.T) {
			// A gate blocks the first handler so nothing drains: with
			// depth 1 the queue holds exactly one more event and every
			// further Post must be rejected and counted, not block.
			gate := make(chan struct{})
			started := make(chan struct{}, 1)
			h := func(Event) {
				select {
				case started <- struct{}{}:
				default:
				}
				<-gate
			}
			var e Engine
			if name == "event-loop" {
				e = NewEventLoop(h, 1)
			} else {
				e = NewThreaded(h, 1)
			}
			if !e.Post(Event{Type: EvCommand}) {
				t.Fatalf("first post rejected")
			}
			<-started // handler is now stalled on the gate
			if !e.Post(Event{Type: EvCommand}) {
				t.Fatalf("post into empty depth-1 queue rejected")
			}
			const extra = 5
			for i := 0; i < extra; i++ {
				done := make(chan bool, 1)
				go func() { done <- e.Post(Event{Type: EvCommand}) }()
				select {
				case ok := <-done:
					if ok {
						t.Fatalf("post %d accepted on a full queue", i)
					}
				case <-time.After(time.Second):
					t.Fatalf("post %d blocked on a full queue", i)
				}
			}
			if got := e.Dropped(); got != extra {
				t.Fatalf("Dropped() = %d, want %d", got, extra)
			}
			close(gate)
			waitHandled(t, e, 2)
			e.Stop()
		})
	}
}

func TestTypeMappings(t *testing.T) {
	cases := []struct {
		m    wire.Message
		want EventType
	}{
		{&wire.Proposal{}, EvProposal},
		{&wire.Decision{}, EvDecision},
		{&wire.NoDecision{}, EvNoDecision},
		{&wire.Join{}, EvJoin},
		{&wire.Reconfig{}, EvReconfig},
		{&wire.Nack{}, EvNack},
		{&wire.State{}, EvState},
	}
	for _, c := range cases {
		if got := TypeOfMessage(c.m); got != c.want {
			t.Errorf("TypeOfMessage(%T) = %d, want %d", c.m, got, c.want)
		}
	}
	if TypeOfTimer(member.TimerExpect) != EvTimerExpect ||
		TypeOfTimer(member.TimerDecide) != EvTimerDecide ||
		TypeOfTimer(member.TimerSlot) != EvTimerSlot {
		t.Errorf("timer mappings wrong")
	}
	if NumEventTypes != 11 {
		t.Errorf("NumEventTypes = %d", NumEventTypes)
	}
}

func TestThreadedOutOfRangeTypeRoutesToCommand(t *testing.T) {
	var count atomic.Uint64
	e := NewThreaded(func(Event) { count.Add(1) }, 0)
	e.Post(Event{Type: EventType(200)})
	waitHandled(t, e, 1)
	e.Stop()
}
