package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func loadTest(b *testing.B, e Engine) {
	const posters = 8
	per := b.N / posters
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	var accepted atomic.Uint64
	b.ResetTimer()
	for p := 0; p < posters; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if e.Post(Event{Type: EventType((p*7 + i) % NumEventTypes)}) {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for e.Handled() < accepted.Load() {
	}
	b.StopTimer()
	e.Stop()
}

func BenchmarkLoadLoop(b *testing.B) {
	work := 0
	loadTest(b, NewEventLoop(func(Event) {
		for i := 0; i < 100; i++ {
			work += i
		}
	}, 4096))
}

func BenchmarkLoadThreaded(b *testing.B) {
	work := 0
	loadTest(b, NewThreaded(func(Event) {
		for i := 0; i < 100; i++ {
			work += i
		}
	}, 512))
}
