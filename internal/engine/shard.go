package engine

// Sharded worker-pool engine: the fabric's answer to "N groups, N event
// loops, one core". A Pool owns a fixed set of shard goroutines; each
// Sharded engine is pinned to exactly one shard, so everything the §3
// proofs need from the single-threaded event loop still holds per
// engine — all of one group's events are dispatched by one goroutine,
// strictly FIFO, never concurrently — while different groups' engines
// pinned to different shards run in parallel on different cores.
//
// The pool replaces the per-group dedicated goroutine with a shared
// one, so a 64-group host runs GOMAXPROCS dispatch goroutines instead
// of 64 mostly-idle ones, and a busy group can no longer be descheduled
// behind 63 runnable siblings on a loaded box. The cost is head-of-line
// blocking between groups sharing a shard; the fabric spreads groups
// round-robin so the blocking is 1/shards of the old single-demux
// serialization, not a new bottleneck.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of shard dispatch goroutines shared by many
// Sharded engines. Create one per fabric node (or process), hand each
// engine a shard index, and Close it after every engine has stopped.
type Pool struct {
	shards  []*shard
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// shard is one dispatch goroutine and its queue. Every event posted to
// any engine pinned here flows through this one channel, so per-engine
// dispatch is sequential by construction.
type shard struct {
	ch   chan shardItem
	done chan struct{}
}

// shardItem is one queued unit: an event for an engine, or a stop
// barrier (drain non-nil). Passed by value — posting allocates nothing.
type shardItem struct {
	eng   *Sharded
	ev    Event
	drain chan struct{}
}

// NewPool starts a pool of n shard goroutines with per-shard queue
// depth depth (n <= 0: GOMAXPROCS; depth <= 0: 4096).
func NewPool(n, depth int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 4096
	}
	p := &Pool{shards: make([]*shard, n)}
	for i := range p.shards {
		s := &shard{
			ch:   make(chan shardItem, depth),
			done: make(chan struct{}),
		}
		p.shards[i] = s
		p.wg.Add(1)
		go p.run(s)
	}
	return p
}

// Shards returns the number of shard goroutines.
func (p *Pool) Shards() int { return len(p.shards) }

func (p *Pool) run(s *shard) {
	defer p.wg.Done()
	for {
		select {
		case it := <-s.ch:
			exec(it)
		case <-s.done:
			// Drain whatever is already queued, then exit — the same
			// shutdown contract as EventLoop.
			for {
				select {
				case it := <-s.ch:
					exec(it)
				default:
					return
				}
			}
		}
	}
}

func exec(it shardItem) {
	if it.drain != nil {
		close(it.drain)
		return
	}
	it.eng.queued.Add(-1)
	it.eng.handler(it.ev)
	it.eng.handled.Add(1)
}

// Close stops every shard goroutine after draining the queues. Call it
// only after every engine created from the pool has been Stop'd;
// posting to an engine of a closed pool returns false.
func (p *Pool) Close() {
	if p.stopped.Swap(true) {
		return
	}
	for _, s := range p.shards {
		close(s.done)
	}
	p.wg.Wait()
}

// Engine creates an engine pinned to shard idx (mod Shards) dispatching
// to h. Engines pinned to the same shard serialize against each other;
// engines on different shards run concurrently.
func (p *Pool) Engine(idx int, h Handler) *Sharded {
	if idx < 0 {
		idx = -idx
	}
	return &Sharded{
		pool:    p,
		shard:   p.shards[idx%len(p.shards)],
		handler: h,
	}
}

// Sharded is one engine multiplexed onto a Pool shard. It implements
// Engine with the same semantics as EventLoop — sequential FIFO
// dispatch, non-blocking Post with drop accounting, Stop that drains —
// except that the dispatch goroutine is shared with the other engines
// on its shard.
type Sharded struct {
	pool    *Pool
	shard   *shard
	handler Handler
	stopped atomic.Bool
	handled atomic.Uint64
	dropped atomic.Uint64
	queued  atomic.Int64
}

// Post implements Engine. The queue bound is the shard's, so a slow
// co-sharded engine can overflow it for everyone on the shard — the
// same omission-failure semantics as a full EventLoop queue, surfaced
// per engine in Dropped.
func (e *Sharded) Post(ev Event) bool {
	if e.stopped.Load() || e.pool.stopped.Load() {
		return false
	}
	e.queued.Add(1)
	select {
	case e.shard.ch <- shardItem{eng: e, ev: ev}:
		return true
	default:
		e.queued.Add(-1)
		e.dropped.Add(1)
		return false
	}
}

// Stop implements Engine: it stops intake, then waits for every event
// of this engine already queued on the shard to be dispatched (a
// barrier item follows them through the same FIFO channel). Other
// engines on the shard keep running. Must not be called from the
// shard's own dispatch goroutine.
func (e *Sharded) Stop() {
	if e.stopped.Swap(true) {
		return
	}
	drained := make(chan struct{})
	select {
	case e.shard.ch <- shardItem{drain: drained}:
		select {
		case <-drained:
		case <-e.shard.done:
			// Pool closing concurrently: its drain loop will process the
			// barrier (or already has); either way the queue empties.
			<-drained
		}
	case <-e.shard.done:
		// Pool already closing; Close's drain handles the backlog.
	}
}

// Handled implements Engine.
func (e *Sharded) Handled() uint64 { return e.handled.Load() }

// Dropped implements Engine.
func (e *Sharded) Dropped() uint64 { return e.dropped.Load() }

// QueueLen implements Engine: this engine's share of the shard queue.
func (e *Sharded) QueueLen() int {
	if n := e.queued.Load(); n > 0 {
		return int(n)
	}
	return 0
}

var _ Engine = (*Sharded)(nil)
