// Package durable is the crash-recovery subsystem: a segmented,
// CRC-framed append-only write-ahead log plus atomic snapshot files.
//
// A timewheel process with a data directory appends every delivered
// update and every installed view to the log at delivery time, and
// periodically writes a snapshot of the application state. After a
// crash (including kill -9), Open replays the newest valid snapshot
// plus the log tail, so the process rejoins the group warm and only
// fetches the delta of updates it missed — falling back to a full
// network state transfer when the log is stale, torn, or corrupt.
//
// On-disk layout (all files live directly in the data directory):
//
//	wal-<first index, %016x>.seg   log segments, rotated by size
//	snap-<last index, %016x>.snap  snapshots, written atomically
//
// Every record — log records and the snapshot body alike — is framed
// as
//
//	u32 length | u32 CRC-32C(body) | body
//
// with little-endian integers, and every body starts with a format
// version byte and a kind byte. See docs/PERSISTENCE.md for the full
// format and the recovery algorithm.
package durable

import (
	"errors"
	"time"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncBatched syncs at most once per BatchInterval (checked on
	// append) and on rotation, snapshot and Close. One interval of
	// acknowledged deliveries may be lost on a crash; recovery then
	// fetches them as part of the rejoin delta. This is the default.
	FsyncBatched FsyncPolicy = iota
	// FsyncAlways syncs after every append.
	FsyncAlways
	// FsyncNone never syncs explicitly (the OS flushes eventually).
	FsyncNone
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return "batched"
	}
}

// ParseFsyncPolicy maps the -fsync flag spellings to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batched", "":
		return FsyncBatched, nil
	case "none":
		return FsyncNone, nil
	}
	return FsyncBatched, errors.New("durable: unknown fsync policy " + s)
}

// Options configures a store.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// Policy is the fsync policy (default FsyncBatched).
	Policy FsyncPolicy
	// BatchInterval is the FsyncBatched window (default 50ms).
	BatchInterval time.Duration
	// SegmentBytes rotates the log when the active segment exceeds it
	// (default 1 MiB).
	SegmentBytes int64
	// TailKeep bounds the in-memory replay tail: the most recent
	// TailKeep update records stay servable as a rejoin delta,
	// independent of how often this process snapshots (default 1024).
	TailKeep int
	// ObserveSync, if set, receives the wall-clock duration of every
	// log-segment fsync. Called with the store lock held on the append
	// path — it must be fast and non-blocking (an atomic histogram
	// observe, not I/O).
	ObserveSync func(d time.Duration)
	// ObserveSnapshot, if set, receives the encoded byte size of every
	// successfully written snapshot. Same constraints as ObserveSync.
	ObserveSnapshot func(bytes int)
	// ObserveReplay, if set, receives the record count of every served
	// replay delta. Same constraints as ObserveSync.
	ObserveReplay func(records int)
}

// DefaultTailKeep is the replay-tail retention applied when
// Options.TailKeep is zero.
const DefaultTailKeep = 1024

func (o Options) withDefaults() Options {
	if o.BatchInterval <= 0 {
		o.BatchInterval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	return o
}

// UpdateRecord is one delivered update.
type UpdateRecord struct {
	ID      oal.ProposalID
	Ordinal oal.Ordinal // oal.None for fast-path (dpd) deliveries
	Sem     oal.Semantics
	SendTS  model.Time
	Payload []byte
}

// ViewRecord is one installed membership view. Membership descriptors
// occupy ordinals in the oal, so the record carries the descriptor's
// ordinal: recovery needs it to compute the contiguous coverage the
// process can advertise when rejoining.
type ViewRecord struct {
	Seq     model.GroupSeq
	Members []model.ProcessID
	Ordinal oal.Ordinal
	Lineage model.GroupSeq
}

// FIFOCursor is one proposer's next-expected FIFO sequence number.
type FIFOCursor struct {
	Proposer model.ProcessID
	Next     uint64
}

// ExtraEntry identifies an update delivered beyond the snapshot's
// contiguous coverage (a delivery past a gap, or a fast-path delivery,
// recorded with ordinal oal.None). Its payload is folded into the
// snapshot's application state; only the identity is kept, so a
// restarted process never re-applies it.
type ExtraEntry struct {
	ID      oal.ProposalID
	Ordinal oal.Ordinal
}

// SnapshotMeta is the protocol state stored alongside the application
// snapshot.
type SnapshotMeta struct {
	// Lineage is the ordinal space the coverage belongs to: the group
	// sequence number of the formation that started it. Ordinals restart
	// at 1 on every group formation, so coverage from one lineage must
	// never be compared against ordinals from another.
	Lineage model.GroupSeq
	// Covered is the contiguous prefix of ordinals the application
	// state provably includes.
	Covered oal.Ordinal
	// SettledTS is the broadcast layer's high-water settled timestamp.
	SettledTS model.Time
	// Extra lists deliveries beyond Covered folded into the state.
	Extra []ExtraEntry
	// FIFO holds the per-proposer FIFO cursors.
	FIFO []FIFOCursor
}

// Recovery is what Open reconstructed from disk.
type Recovery struct {
	// HaveSnapshot reports whether a valid snapshot was loaded.
	HaveSnapshot bool
	// Meta is the loaded snapshot's protocol state (zero value without
	// a snapshot).
	Meta SnapshotMeta
	// AppState is the loaded snapshot's application state.
	AppState []byte
	// Updates and Views are the valid log records after the snapshot,
	// in append order.
	Updates []UpdateRecord
	Views   []ViewRecord
	// TornTail reports that the final record was incomplete (the
	// expected shape after a crash mid-append) and was truncated away.
	TornTail bool
	// Discarded collects human-readable notes about data that failed
	// validation (corrupt snapshots, mid-log corruption, version
	// mismatches). Empty means a fully clean recovery.
	Discarded []string
}

// Empty reports whether recovery found nothing usable.
func (r *Recovery) Empty() bool {
	return !r.HaveSnapshot && len(r.Updates) == 0 && len(r.Views) == 0
}

// AdvertisedCoverage returns the contiguous ordinal prefix the
// recovered state provably includes: the snapshot coverage extended
// over the recovered log records (updates, view descriptors) and the
// snapshot's extra entries. A rejoining process advertises this so the
// decider can serve it a delta instead of a full state transfer.
//
// When the log spans a lineage boundary (the process crashed after a
// group formation restarted the ordinal space but before the next
// snapshot), post-boundary ordinals are incomparable with the
// snapshot's, so only the snapshot's own coverage and extras count —
// the conservative claim degrades to a full transfer, never to a delta
// over the wrong base.
func (r *Recovery) AdvertisedCoverage() oal.Ordinal {
	have := make(map[oal.Ordinal]bool)
	for _, e := range r.Meta.Extra {
		if e.Ordinal != oal.None {
			have[e.Ordinal] = true
		}
	}
	if !r.mixedLineage() {
		for _, u := range r.Updates {
			if u.Ordinal != oal.None {
				have[u.Ordinal] = true
			}
		}
		for _, v := range r.Views {
			if v.Ordinal != oal.None {
				have[v.Ordinal] = true
			}
		}
	}
	c := r.Meta.Covered
	for have[c+1] {
		c++
	}
	return c
}

// mixedLineage reports whether the recovered log contains view records
// from a lineage other than the recovery's base lineage.
func (r *Recovery) mixedLineage() bool {
	lin := r.Lineage()
	for _, v := range r.Views {
		if v.Lineage != lin {
			return true
		}
	}
	return false
}

// DeliveredIDs returns every update identity the recovered state has
// applied (snapshot extras plus logged updates). The rejoining process
// seeds its delivered set with these so a replayed or retransmitted
// update is never applied twice.
func (r *Recovery) DeliveredIDs() []oal.ProposalID {
	out := make([]oal.ProposalID, 0, len(r.Meta.Extra)+len(r.Updates))
	for _, e := range r.Meta.Extra {
		out = append(out, e.ID)
	}
	for _, u := range r.Updates {
		out = append(out, u.ID)
	}
	return out
}

// Lineage returns the lineage of the recovered application state's
// base: the snapshot's when one was loaded (the base IS the snapshot),
// else the first recovered view's (a founding member that never
// snapshotted rebuilt its state from scratch within that lineage).
// Never the last view's — a lineage boundary in the log changes the
// ordinal space but not the base the coverage claim is about.
func (r *Recovery) Lineage() model.GroupSeq {
	if r.HaveSnapshot || len(r.Views) == 0 {
		return r.Meta.Lineage
	}
	return r.Views[0].Lineage
}
