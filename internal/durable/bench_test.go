package durable

import (
	"fmt"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// BenchmarkRecoverReplay measures recovery (snapshot load + log
// replay) throughput against the log size a crash leaves behind:
// records appended since the last snapshot.
func BenchmarkRecoverReplay(b *testing.B) {
	for _, records := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			s, _, err := Open(Options{Dir: dir, Policy: FsyncNone})
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 128)
			var bytes int64
			for i := 1; i <= records; i++ {
				u := UpdateRecord{
					ID:      oal.ProposalID{Proposer: model.ProcessID(i % 5), Seq: uint64(i)},
					Ordinal: oal.Ordinal(i),
					Sem:     oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
					SendTS:  model.Time(i),
					Payload: payload,
				}
				if err := s.AppendUpdate(u); err != nil {
					b.Fatal(err)
				}
				bytes += int64(len(payload))
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, rec, err := Open(Options{Dir: dir})
				if err != nil {
					b.Fatal(err)
				}
				if len(rec.Updates) != records {
					b.Fatalf("recovered %d of %d", len(rec.Updates), records)
				}
				s.Close()
			}
			b.SetBytes(bytes)
			b.ReportMetric(float64(records), "records/op")
		})
	}
}

// BenchmarkAppend measures the append hot path per fsync policy.
func BenchmarkAppend(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncNone, FsyncBatched} {
		b.Run(pol.String(), func(b *testing.B) {
			s, _, err := Open(Options{Dir: b.TempDir(), Policy: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			u := UpdateRecord{
				ID:      oal.ProposalID{Proposer: 1, Seq: 1},
				Sem:     oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
				Payload: make([]byte, 128),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u.ID.Seq = uint64(i + 1)
				u.Ordinal = oal.Ordinal(i + 1)
				if err := s.AppendUpdate(u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
