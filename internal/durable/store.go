package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"timewheel/internal/oal"
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segName(first uint64) string  { return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix) }
func snapName(index uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, index, snapSuffix) }

func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return v, err == nil
}

// Store is an open durable-state directory: the active log segment
// plus the in-memory replay tail used to serve rejoin deltas. Methods
// are safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	opts Options

	seg      *os.File
	segSize  int64
	next     uint64 // index of the next record to append
	lastSync time.Time
	closed   bool

	// tail holds every appended update with ordinal > tailFloor (plus
	// fast-path deliveries since the floor was set), in append order —
	// the source for ReplaySince.
	tail      []UpdateRecord
	tailFloor oal.Ordinal

	// Stats.
	appends   uint64
	syncs     uint64
	snapshots uint64
}

// Stats are cumulative store counters.
type Stats struct {
	Appends   uint64
	Syncs     uint64
	Snapshots uint64
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Appends: s.appends, Syncs: s.syncs, Snapshots: s.snapshots}
}

// Open opens (creating if needed) the data directory, recovers the
// newest valid snapshot plus the log tail, repairs the log on disk
// (truncating a torn final record, deleting segments past a corruption
// point), and starts a fresh active segment. The returned Recovery is
// never nil.
func Open(opts Options) (*Store, *Recovery, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("durable: Options.Dir must be set")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	if opts.TailKeep <= 0 {
		opts.TailKeep = DefaultTailKeep
	}
	s := &Store{opts: opts, lastSync: time.Now()}
	rec, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	// Seed the replay tail. Snapshot extras are deliveries whose
	// payloads live only inside the snapshot's app state, so the floor
	// must rise past them: a joiner older than that hole needs a full
	// transfer.
	s.tailFloor = rec.Meta.Covered
	for _, x := range rec.Meta.Extra {
		if x.Ordinal > s.tailFloor {
			s.tailFloor = x.Ordinal
		}
	}
	s.pruneTail()
	for _, u := range rec.Updates {
		if u.Ordinal == oal.None || u.Ordinal > s.tailFloor {
			s.tail = append(s.tail, u)
		}
	}
	if err := s.openSegment(); err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

// recover scans the directory, fills in s.next, and returns what was
// reconstructed. It repairs the on-disk log as a side effect.
func (s *Store) recover() (*Recovery, error) {
	rec := &Recovery{}
	names, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return nil, err
	}
	var segs, snaps []uint64
	for _, de := range names {
		if v, ok := parseName(de.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, v)
		} else if v, ok := parseName(de.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, v)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first

	// Newest decodable snapshot wins.
	var snapIndex uint64
	for _, v := range snaps {
		raw, err := os.ReadFile(filepath.Join(s.opts.Dir, snapName(v)))
		if err != nil {
			rec.note("snapshot %016x: %v", v, err)
			continue
		}
		body, _, err := splitFrame(raw)
		if err == nil {
			var idx uint64
			var meta SnapshotMeta
			var app []byte
			if idx, meta, app, err = decodeSnapshotBody(body); err == nil && idx != v {
				err = fmt.Errorf("index %016x does not match filename", idx)
			}
			if err == nil {
				rec.HaveSnapshot, rec.Meta, rec.AppState, snapIndex = true, meta, app, v
				break
			}
		}
		rec.note("snapshot %016x: %v", v, err)
	}

	// Scan segments in order, skipping records the snapshot covers.
	s.next = snapIndex + 1
	expected := uint64(0)  // next record index, once the first record is seen
	firstSeen := uint64(0) // index of the first record seen
	lost := false          // a marker promised a snapshot we cannot load
	cut := -1              // segs[cut+1:] are invalid and will be deleted
scan:
	for si, first := range segs {
		raw, err := os.ReadFile(filepath.Join(s.opts.Dir, segName(first)))
		if err != nil {
			rec.note("segment %016x: %v", first, err)
			cut = si - 1
			break
		}
		off := 0
		for off < len(raw) {
			n, r, err := decodeAt(raw, off)
			if err != nil {
				last := si == len(segs)-1
				if last && err == ErrTruncated {
					rec.TornTail = true
				} else {
					rec.note("segment %016x offset %d: %v", first, off, err)
				}
				// Keep the valid prefix: truncate this segment here and
				// drop everything after it.
				s.truncateSegment(first, off, rec)
				cut = si
				break scan
			}
			if expected != 0 && r.index != expected {
				rec.note("segment %016x: index gap (%d after %d)", first, r.index, expected-1)
				s.truncateSegment(first, off, rec)
				cut = si
				break scan
			}
			expected = r.index + 1
			if firstSeen == 0 {
				firstSeen = r.index
			}
			if r.index > snapIndex {
				switch r.kind {
				case kindUpdate:
					rec.Updates = append(rec.Updates, r.update)
				case kindView:
					rec.Views = append(rec.Views, r.view)
				case kindSnapMark:
					if r.snapTo > snapIndex {
						// The marker promises a snapshot we could not
						// load: the records it covered may already be
						// truncated away, so no reconstruction is
						// possible — not even from later records, which
						// would apply on top of the missing state.
						rec.note("snapshot %016x marked but not loadable", r.snapTo)
						lost = true
					}
				}
			}
			off += n
		}
	}
	if cut >= 0 {
		for _, first := range segs[cut+1:] {
			if err := os.Remove(filepath.Join(s.opts.Dir, segName(first))); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
	}
	if lost {
		rec.HaveSnapshot = false
		rec.Meta, rec.AppState = SnapshotMeta{}, nil
		rec.Updates, rec.Views = nil, nil
	}
	if firstSeen > snapIndex+1 {
		// Leading segments are missing: the log tail cannot connect to
		// the snapshot, so its records are unusable.
		rec.note("log starts at %d, snapshot covers through %d", firstSeen, snapIndex)
		rec.Updates, rec.Views = nil, nil
	}
	if expected > s.next {
		s.next = expected
	}
	if rec.Empty() && s.next > 1 {
		// Nothing usable survived validation: wipe the directory so
		// stale files cannot collide with the indexes of the fresh
		// incarnation.
		for _, first := range segs {
			os.Remove(filepath.Join(s.opts.Dir, segName(first)))
		}
		for _, v := range snaps {
			os.Remove(filepath.Join(s.opts.Dir, snapName(v)))
		}
		s.next = 1
	}
	return rec, nil
}

// decodeAt decodes the frame starting at off.
func decodeAt(raw []byte, off int) (n int, r record, err error) {
	body, n, err := splitFrame(raw[off:])
	if err != nil {
		return 0, record{}, err
	}
	r, err = decodeBody(body)
	if err != nil {
		return 0, record{}, err
	}
	return n, r, nil
}

func (r *Recovery) note(format string, args ...any) {
	r.Discarded = append(r.Discarded, fmt.Sprintf(format, args...))
}

// truncateSegment cuts the named segment at off (removing it entirely
// when off is 0), so the next recovery does not re-walk bad bytes.
func (s *Store) truncateSegment(first uint64, off int, rec *Recovery) {
	path := filepath.Join(s.opts.Dir, segName(first))
	var err error
	if off == 0 {
		err = os.Remove(path)
	} else {
		err = os.Truncate(path, int64(off))
	}
	if err != nil {
		rec.note("repair %016x: %v", first, err)
	}
}

// openSegment starts a fresh active segment at the current next index.
func (s *Store) openSegment() error {
	f, err := os.OpenFile(filepath.Join(s.opts.Dir, segName(s.next)),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.seg, s.segSize = f, 0
	s.syncDir()
	return nil
}

// syncDir flushes directory metadata (new files, renames); errors are
// ignored on filesystems that do not support it.
func (s *Store) syncDir() {
	if d, err := os.Open(s.opts.Dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}

// AppendUpdate logs one delivered update.
func (s *Store) AppendUpdate(u UpdateRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	if err := s.append(encodeUpdate(s.next, u)); err != nil {
		return err
	}
	s.tail = append(s.tail, u)
	s.pruneTail()
	return nil
}

// AppendView logs one installed view.
func (s *Store) AppendView(v ViewRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	return s.append(encodeView(s.next, v))
}

// append writes one encoded frame, applying rotation and the fsync
// policy. Caller holds s.mu.
func (s *Store) append(frame []byte) error {
	if s.segSize >= s.opts.SegmentBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	if _, err := s.seg.Write(frame); err != nil {
		return err
	}
	s.segSize += int64(len(frame))
	s.next++
	s.appends++
	switch s.opts.Policy {
	case FsyncAlways:
		return s.fsync()
	case FsyncBatched:
		if time.Since(s.lastSync) >= s.opts.BatchInterval {
			return s.fsync()
		}
	}
	return nil
}

// rotate seals the active segment and opens the next one. Caller holds
// s.mu.
func (s *Store) rotate() error {
	if err := s.fsync(); err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	return s.openSegment()
}

func (s *Store) fsync() error {
	start := time.Now()
	s.lastSync = start
	s.syncs++
	err := s.seg.Sync()
	if s.opts.ObserveSync != nil {
		s.opts.ObserveSync(time.Since(start))
	}
	return err
}

// WriteSnapshot atomically persists the application state plus
// protocol metadata, appends a snapshot marker, and truncates the log:
// segments whose records the snapshot covers are deleted, as are older
// snapshot files. The replay tail is pruned to meta.Covered.
func (s *Store) WriteSnapshot(meta SnapshotMeta, appState []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	snapTo := s.next - 1 // the snapshot covers every record so far

	// 1. Snapshot file, atomically: tmp + fsync + rename + dir fsync.
	path := filepath.Join(s.opts.Dir, snapName(snapTo))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := encodeSnapshot(snapTo, meta, appState)
	_, werr := f.Write(enc)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	s.syncDir()

	// 2. Rotate so every prior segment is fully covered, then append
	// the marker as the new segment's first record.
	if err := s.rotate(); err != nil {
		return err
	}
	if err := s.append(encodeSnapMark(s.next, snapTo, meta.Lineage)); err != nil {
		return err
	}
	if err := s.fsync(); err != nil {
		return err
	}

	// 3. Truncate: older segments and older snapshots are superseded.
	names, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return err
	}
	for _, de := range names {
		if v, ok := parseName(de.Name(), segPrefix, segSuffix); ok && v <= snapTo {
			os.Remove(filepath.Join(s.opts.Dir, de.Name()))
		} else if v, ok := parseName(de.Name(), snapPrefix, snapSuffix); ok && v < snapTo {
			os.Remove(filepath.Join(s.opts.Dir, de.Name()))
		}
	}

	s.snapshots++
	if s.opts.ObserveSnapshot != nil {
		s.opts.ObserveSnapshot(len(enc))
	}
	return nil
}

// pruneTail bounds the in-memory replay tail to the most recent
// TailKeep updates. Retention is count-based, deliberately decoupled
// from snapshot cadence: a frequently snapshotting member can still
// serve a contiguous replay delta to a peer that missed up to TailKeep
// deliveries. Pruned ordinals raise the floor — the tail below it is
// no longer contiguous, so ReplaySince refuses to reach back there.
func (s *Store) pruneTail() {
	excess := len(s.tail) - s.opts.TailKeep
	if excess <= 0 {
		return
	}
	for _, u := range s.tail[:excess] {
		if u.Ordinal != oal.None && u.Ordinal > s.tailFloor {
			s.tailFloor = u.Ordinal
		}
	}
	s.tail = append([]UpdateRecord(nil), s.tail[excess:]...)
}

// ReplaySince returns the logged updates a member that has contiguous
// coverage through `since` still needs, in delivery order, and whether
// the tail reaches back that far. When ok is false the joiner must be
// served a full state transfer instead.
func (s *Store) ReplaySince(since oal.Ordinal) ([]UpdateRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if since < s.tailFloor {
		return nil, false
	}
	var out []UpdateRecord
	for _, u := range s.tail {
		if u.Ordinal == oal.None || u.Ordinal > since {
			out = append(out, u)
		}
	}
	if s.opts.ObserveReplay != nil {
		s.opts.ObserveReplay(len(out))
	}
	return out, true
}

// TailFloor returns the oldest coverage the store can serve a delta
// for.
func (s *Store) TailFloor() oal.Ordinal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tailFloor
}

// ResetTail clears the replay tail and raises its floor — used when
// the ordinal space restarts (new lineage) and the old tail can no
// longer be compared against joiner coverage.
func (s *Store) ResetTail(floor oal.Ordinal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tail = nil
	s.tailFloor = floor
}

// Sync forces the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	return s.fsync()
}

// Abandon closes the store's file handle without a final sync — the
// closest a live process gets to simulating its own kill -9. Bytes
// already handed to the OS survive (as they would when only the process
// dies); loss of unsynced bytes at a machine crash is exercised by the
// torn-tail tests, which truncate files directly.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.seg.Close() //nolint:errcheck // abandoning: sync intentionally skipped
}

// Close syncs and closes the store. Further operations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.seg.Sync()
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	return err
}
