package durable

import (
	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// FuzzSeedFrames returns one valid frame of every durable record kind
// plus the hostile shapes recovery must survive — a truncated tail and
// a corrupt-CRC frame. It seeds both this package's fuzz targets and
// the wire codec's FuzzDecode (which must reject durable frames
// cleanly).
func FuzzSeedFrames() [][]byte {
	u := encodeUpdate(1, UpdateRecord{
		ID:      oal.ProposalID{Proposer: 2, Seq: 9},
		Ordinal: 5,
		Sem:     oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
		SendTS:  12345,
		Payload: []byte("payload"),
	})
	v := encodeView(2, ViewRecord{Seq: 3, Members: []model.ProcessID{0, 1, 2}, Ordinal: 6, Lineage: 3})
	m := encodeSnapMark(3, 2, 3)
	s := encodeSnapshot(4, SnapshotMeta{
		Lineage: 3, Covered: 6, SettledTS: 77,
		Extra: []ExtraEntry{{ID: oal.ProposalID{Proposer: 1, Seq: 4}, Ordinal: 7}},
		FIFO:  []FIFOCursor{{Proposer: 0, Next: 2}},
	}, []byte("app"))
	torn := append([]byte(nil), u[:len(u)-3]...)
	bad := append([]byte(nil), v...)
	bad[len(bad)-1] ^= 0xff
	return [][]byte{u, v, m, s, torn, bad}
}
