package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// Version is the durable record format version. A bump invalidates
// existing data directories: recovery treats older versions as
// corrupt and falls back to a full network state transfer.
const Version = 1

// Record kinds. The snapshot kind only ever appears as the single
// framed body of a snap-*.snap file; the others are log records.
const (
	kindUpdate   = 1 // one delivered update
	kindView     = 2 // one installed membership view
	kindSnapMark = 3 // marker: a snapshot through index N was written
	kindSnapshot = 4 // snapshot file body
)

// frameHeaderLen is u32 length + u32 CRC.
const frameHeaderLen = 8

// maxRecordBytes bounds a single record body (frames claiming more are
// treated as corruption, not as gigantic allocations).
const maxRecordBytes = 1 << 26

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors (also produced, wrapped, during recovery scans).
var (
	ErrTruncated  = errors.New("durable: truncated record")
	ErrBadCRC     = errors.New("durable: CRC mismatch")
	ErrBadVersion = errors.New("durable: unknown format version")
	ErrBadKind    = errors.New("durable: unknown record kind")
	ErrCorrupt    = errors.New("durable: corrupt record")
)

// record is one decoded log record.
type record struct {
	kind    int
	index   uint64
	update  UpdateRecord   // kind == kindUpdate
	view    ViewRecord     // kind == kindView
	snapTo  uint64         // kind == kindSnapMark: snapshot covers indexes <= snapTo
	lineage model.GroupSeq // kind == kindSnapMark
}

// --- encoding ----------------------------------------------------------------

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// frame wraps body as `u32 len | u32 crc | body` and returns the full
// frame.
func frame(body []byte) []byte {
	out := make([]byte, frameHeaderLen, frameHeaderLen+len(body))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(body, crcTable))
	return append(out, body...)
}

func encodeUpdate(index uint64, u UpdateRecord) []byte {
	e := &encoder{}
	e.u8(Version)
	e.u8(kindUpdate)
	e.u64(index)
	e.u64(uint64(u.ID.Proposer))
	e.u64(u.ID.Seq)
	e.u64(uint64(u.Ordinal))
	e.u8(uint8(u.Sem.Order))
	e.u8(uint8(u.Sem.Atomicity))
	e.i64(int64(u.SendTS))
	e.bytes(u.Payload)
	return frame(e.buf)
}

func encodeView(index uint64, v ViewRecord) []byte {
	e := &encoder{}
	e.u8(Version)
	e.u8(kindView)
	e.u64(index)
	e.u64(uint64(v.Seq))
	e.u64(uint64(v.Lineage))
	e.u64(uint64(v.Ordinal))
	e.u32(uint32(len(v.Members)))
	for _, m := range v.Members {
		e.u64(uint64(m))
	}
	return frame(e.buf)
}

func encodeSnapMark(index, snapTo uint64, lineage model.GroupSeq) []byte {
	e := &encoder{}
	e.u8(Version)
	e.u8(kindSnapMark)
	e.u64(index)
	e.u64(snapTo)
	e.u64(uint64(lineage))
	return frame(e.buf)
}

func encodeSnapshot(index uint64, meta SnapshotMeta, appState []byte) []byte {
	e := &encoder{}
	e.u8(Version)
	e.u8(kindSnapshot)
	e.u64(index)
	e.u64(uint64(meta.Lineage))
	e.u64(uint64(meta.Covered))
	e.i64(int64(meta.SettledTS))
	e.u32(uint32(len(meta.Extra)))
	for _, x := range meta.Extra {
		e.u64(uint64(x.ID.Proposer))
		e.u64(x.ID.Seq)
		e.u64(uint64(x.Ordinal))
	}
	e.u32(uint32(len(meta.FIFO)))
	for _, f := range meta.FIFO {
		e.u64(uint64(f.Proposer))
		e.u64(f.Next)
	}
	e.bytes(appState)
	return frame(e.buf)
}

// --- decoding ----------------------------------------------------------------

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > maxRecordBytes || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	out := append([]byte(nil), d.buf[d.off:d.off+n]...)
	d.off += n
	return out
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(d.buf)-d.off)
	}
	return nil
}

// decodeBody decodes a verified frame body into a record (log kinds
// only).
func decodeBody(body []byte) (record, error) {
	d := &decoder{buf: body}
	if v := d.u8(); d.err == nil && v != Version {
		return record{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	kind := int(d.u8())
	r := record{kind: kind, index: d.u64()}
	if d.err == nil && r.index == 0 {
		return record{}, fmt.Errorf("%w: record index 0", ErrCorrupt)
	}
	switch kind {
	case kindUpdate:
		r.update.ID.Proposer = model.ProcessID(d.u64())
		r.update.ID.Seq = d.u64()
		r.update.Ordinal = oal.Ordinal(d.u64())
		r.update.Sem.Order = oal.Order(d.u8())
		r.update.Sem.Atomicity = oal.Atomicity(d.u8())
		r.update.SendTS = model.Time(d.i64())
		r.update.Payload = d.bytes()
	case kindView:
		r.view.Seq = model.GroupSeq(d.u64())
		r.view.Lineage = model.GroupSeq(d.u64())
		r.view.Ordinal = oal.Ordinal(d.u64())
		n := int(d.u32())
		if d.err == nil && (n < 0 || n > maxRecordBytes/8) {
			return record{}, ErrTruncated
		}
		for i := 0; i < n && d.err == nil; i++ {
			r.view.Members = append(r.view.Members, model.ProcessID(d.u64()))
		}
	case kindSnapMark:
		r.snapTo = d.u64()
		r.lineage = model.GroupSeq(d.u64())
	default:
		if d.err == nil {
			return record{}, fmt.Errorf("%w: %d", ErrBadKind, kind)
		}
	}
	if err := d.done(); err != nil {
		return record{}, err
	}
	return r, nil
}

// decodeSnapshotBody decodes a verified snapshot-file body.
func decodeSnapshotBody(body []byte) (index uint64, meta SnapshotMeta, appState []byte, err error) {
	d := &decoder{buf: body}
	if v := d.u8(); d.err == nil && v != Version {
		return 0, meta, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if k := d.u8(); d.err == nil && k != kindSnapshot {
		return 0, meta, nil, fmt.Errorf("%w: %d", ErrBadKind, k)
	}
	index = d.u64()
	meta.Lineage = model.GroupSeq(d.u64())
	meta.Covered = oal.Ordinal(d.u64())
	meta.SettledTS = model.Time(d.i64())
	nx := int(d.u32())
	if d.err == nil && (nx < 0 || nx > maxRecordBytes/24) {
		return 0, meta, nil, ErrTruncated
	}
	for i := 0; i < nx && d.err == nil; i++ {
		var x ExtraEntry
		x.ID.Proposer = model.ProcessID(d.u64())
		x.ID.Seq = d.u64()
		x.Ordinal = oal.Ordinal(d.u64())
		meta.Extra = append(meta.Extra, x)
	}
	nf := int(d.u32())
	if d.err == nil && (nf < 0 || nf > maxRecordBytes/16) {
		return 0, meta, nil, ErrTruncated
	}
	for i := 0; i < nf && d.err == nil; i++ {
		var f FIFOCursor
		f.Proposer = model.ProcessID(d.u64())
		f.Next = d.u64()
		meta.FIFO = append(meta.FIFO, f)
	}
	appState = d.bytes()
	if err := d.done(); err != nil {
		return 0, meta, nil, err
	}
	return index, meta, appState, nil
}

// DecodeFrame verifies and decodes one framed record from buf,
// returning the decoded record and the number of bytes consumed. It is
// exported for the fuzz harness; the store's recovery scan uses the
// same checks. The error is ErrTruncated when buf ends mid-frame (the
// torn-tail case), ErrBadCRC / ErrBadVersion / ErrBadKind otherwise.
func DecodeFrame(buf []byte) (n int, err error) {
	body, n, err := splitFrame(buf)
	if err != nil {
		return n, err
	}
	if _, err := decodeBody(body); err != nil {
		return n, err
	}
	return n, nil
}

// splitFrame validates the frame header and CRC and returns the body.
func splitFrame(buf []byte) (body []byte, n int, err error) {
	if len(buf) < frameHeaderLen {
		return nil, 0, ErrTruncated
	}
	ln := binary.LittleEndian.Uint32(buf[0:4])
	if ln > maxRecordBytes {
		return nil, 0, fmt.Errorf("%w: frame length %d", ErrCorrupt, ln)
	}
	if len(buf) < frameHeaderLen+int(ln) {
		return nil, 0, ErrTruncated
	}
	body = buf[frameHeaderLen : frameHeaderLen+int(ln)]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, 0, ErrBadCRC
	}
	return body, frameHeaderLen + int(ln), nil
}
