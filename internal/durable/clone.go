package durable

// CloneSnapshot seeds a fresh data directory from another store's
// newest snapshot — the state-transfer primitive of a group move
// (fabric.MoveGroup): the destination replica opens the cloned
// directory, recovers the snapshot image, and its join advertises the
// covered prefix so live members serve only the delta written since.
//
// Snapshot files are written atomically (tmp + fsync + rename), so
// reading one out of a live store's directory is safe; the newest file
// is already durable and self-validating (CRC frame + embedded index).
// CloneSnapshot is deliberately conservative: the destination directory
// must be empty or absent (mixing a foreign snapshot into existing
// state would splice incomparable histories), and any unreadable or
// missing snapshot just reports cloned=false — the caller proceeds and
// the ordinary full state transfer covers the move.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CloneSnapshot copies the newest snapshot file from srcDir into
// dstDir. cloned is false when srcDir holds no readable snapshot.
// An error is returned when dstDir exists and is non-empty, or on I/O
// failure writing the copy.
func CloneSnapshot(srcDir, dstDir string) (cloned bool, err error) {
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return false, fmt.Errorf("durable: clone source: %w", err)
	}
	var snaps []uint64
	for _, de := range entries {
		if v, ok := parseName(de.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, v)
		}
	}
	if len(snaps) == 0 {
		return false, nil
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first

	if existing, err := os.ReadDir(dstDir); err == nil && len(existing) > 0 {
		return false, fmt.Errorf("durable: clone destination %s is not empty", dstDir)
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return false, err
	}

	for _, v := range snaps {
		raw, err := os.ReadFile(filepath.Join(srcDir, snapName(v)))
		if err != nil {
			continue // racing a snapshot rotation; older ones still serve
		}
		// Validate before planting: a corrupt clone would silently force
		// the destination down the full-transfer path anyway, but
		// cheaper to discover here.
		if body, _, ferr := splitFrame(raw); ferr != nil {
			continue
		} else if idx, _, _, derr := decodeSnapshotBody(body); derr != nil || idx != v {
			continue
		}
		tmp := filepath.Join(dstDir, "clone.tmp")
		if err := os.WriteFile(tmp, raw, 0o644); err != nil {
			return false, err
		}
		if err := syncFile(tmp); err != nil {
			os.Remove(tmp)
			return false, err
		}
		if err := os.Rename(tmp, filepath.Join(dstDir, snapName(v))); err != nil {
			os.Remove(tmp)
			return false, err
		}
		if d, err := os.Open(dstDir); err == nil {
			d.Sync() //nolint:errcheck // see Store.syncDir
			d.Close()
		}
		return true, nil
	}
	return false, nil
}

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
