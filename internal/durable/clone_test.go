package durable

import (
	"os"
	"path/filepath"
	"testing"

	"timewheel/internal/oal"
)

func TestCloneSnapshotSeedsFreshDir(t *testing.T) {
	src := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: src, Policy: FsyncAlways})
	for i := 1; i <= 4; i++ {
		if err := s.AppendUpdate(upd(0, uint64(i), oal.Ordinal(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSnapshot(SnapshotMeta{Lineage: 7, Covered: 4, SettledTS: 11}, []byte("state")); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail stays behind on the source — the clone carries
	// only the snapshot; the tail reaches the destination as a replay
	// delta through the live protocol.
	if err := s.AppendUpdate(upd(1, 1, 5, "post")); err != nil {
		t.Fatal(err)
	}
	// Clone while the source store is still live: snapshot writes are
	// atomic, so this is safe by design.
	dst := filepath.Join(t.TempDir(), "moved")
	cloned, err := CloneSnapshot(src, dst)
	if err != nil || !cloned {
		t.Fatalf("CloneSnapshot = %v, %v; want true, nil", cloned, err)
	}
	s.Close()

	d, rec := mustOpen(t, Options{Dir: dst})
	defer d.Close()
	if !rec.HaveSnapshot {
		t.Fatalf("clone did not recover: %+v", rec.Discarded)
	}
	if rec.Meta.Lineage != 7 || rec.Meta.Covered != 4 || string(rec.AppState) != "state" {
		t.Fatalf("cloned snapshot mismatch: %+v", rec.Meta)
	}
	if len(rec.Updates) != 0 {
		t.Fatalf("clone picked up log records: %+v", rec.Updates)
	}
	if c := rec.AdvertisedCoverage(); c != 4 {
		t.Fatalf("advertised coverage = %d, want 4", c)
	}
}

func TestCloneSnapshotNoSnapshot(t *testing.T) {
	src := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: src, Policy: FsyncNone})
	if err := s.AppendUpdate(upd(0, 1, 1, "x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	cloned, err := CloneSnapshot(src, filepath.Join(t.TempDir(), "d"))
	if err != nil || cloned {
		t.Fatalf("CloneSnapshot = %v, %v; want false, nil (full-transfer fallback)", cloned, err)
	}
}

func TestCloneSnapshotRefusesNonEmptyDest(t *testing.T) {
	src := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: src, Policy: FsyncNone})
	if err := s.WriteSnapshot(SnapshotMeta{Covered: 1}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	dst := t.TempDir()
	if err := os.WriteFile(filepath.Join(dst, "stale"), []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if cloned, err := CloneSnapshot(src, dst); err == nil || cloned {
		t.Fatalf("CloneSnapshot into non-empty dir = %v, %v; want error", cloned, err)
	}
}

func TestCloneSnapshotSkipsCorrupt(t *testing.T) {
	src := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: src, Policy: FsyncNone})
	if err := s.WriteSnapshot(SnapshotMeta{Covered: 2}, []byte("good")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// A newer, corrupt snapshot must be skipped in favor of the older
	// valid one.
	if err := os.WriteFile(filepath.Join(src, snapName(99)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "d")
	cloned, err := CloneSnapshot(src, dst)
	if err != nil || !cloned {
		t.Fatalf("CloneSnapshot = %v, %v; want true, nil", cloned, err)
	}
	d, rec := mustOpen(t, Options{Dir: dst})
	defer d.Close()
	if !rec.HaveSnapshot || string(rec.AppState) != "good" {
		t.Fatalf("clone did not fall back to the valid snapshot: %+v", rec)
	}
}
