package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

func mustOpen(t *testing.T, opts Options) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func upd(proposer int, seq uint64, ord oal.Ordinal, payload string) UpdateRecord {
	return UpdateRecord{
		ID:      oal.ProposalID{Proposer: model.ProcessID(proposer), Seq: seq},
		Ordinal: ord,
		Sem:     oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
		SendTS:  model.Time(1000 + int64(seq)),
		Payload: []byte(payload),
	}
}

func TestRoundTripEmptyDir(t *testing.T) {
	s, rec := mustOpen(t, Options{Dir: t.TempDir()})
	defer s.Close()
	if !rec.Empty() || rec.TornTail || len(rec.Discarded) != 0 {
		t.Fatalf("fresh dir should recover empty: %+v", rec)
	}
}

func TestRoundTripUpdatesAndViews(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir, Policy: FsyncAlways})
	want := []UpdateRecord{upd(0, 1, 1, "a"), upd(1, 1, 2, "b"), upd(0, 2, oal.None, "fast")}
	for _, u := range want {
		if err := s.AppendUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	view := ViewRecord{Seq: 7, Members: []model.ProcessID{0, 1, 2}, Ordinal: 3, Lineage: 7}
	if err := s.AppendView(view); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	if len(rec.Discarded) != 0 || rec.TornTail {
		t.Fatalf("clean log flagged: %+v", rec.Discarded)
	}
	if len(rec.Updates) != len(want) {
		t.Fatalf("got %d updates, want %d", len(rec.Updates), len(want))
	}
	for i, u := range rec.Updates {
		if u.ID != want[i].ID || u.Ordinal != want[i].Ordinal ||
			u.Sem != want[i].Sem || u.SendTS != want[i].SendTS ||
			string(u.Payload) != string(want[i].Payload) {
			t.Fatalf("update %d: got %+v want %+v", i, u, want[i])
		}
	}
	if len(rec.Views) != 1 || rec.Views[0].Seq != 7 || rec.Views[0].Ordinal != 3 ||
		len(rec.Views[0].Members) != 3 || rec.Lineage() != 7 {
		t.Fatalf("view round-trip: %+v", rec.Views)
	}
	// Coverage: ordinals 1,2 from updates, 3 from the view descriptor.
	if c := rec.AdvertisedCoverage(); c != 3 {
		t.Fatalf("advertised coverage = %d, want 3", c)
	}
	if n := len(rec.DeliveredIDs()); n != 3 {
		t.Fatalf("delivered ids = %d, want 3", n)
	}
}

func TestSnapshotRoundTripAndTruncation(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir, Policy: FsyncAlways})
	for i := 1; i <= 5; i++ {
		if err := s.AppendUpdate(upd(0, uint64(i), oal.Ordinal(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	meta := SnapshotMeta{
		Lineage:   42,
		Covered:   5,
		SettledTS: 99,
		Extra:     []ExtraEntry{{ID: oal.ProposalID{Proposer: 1, Seq: 9}, Ordinal: oal.None}},
		FIFO:      []FIFOCursor{{Proposer: 0, Next: 6}},
	}
	if err := s.WriteSnapshot(meta, []byte("app-state")); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot records survive alongside it.
	if err := s.AppendUpdate(upd(1, 1, 6, "post")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	if !rec.HaveSnapshot {
		t.Fatalf("snapshot not recovered: %+v", rec.Discarded)
	}
	if rec.Meta.Lineage != 42 || rec.Meta.Covered != 5 || rec.Meta.SettledTS != 99 ||
		len(rec.Meta.Extra) != 1 || len(rec.Meta.FIFO) != 1 || string(rec.AppState) != "app-state" {
		t.Fatalf("snapshot meta round-trip: %+v", rec.Meta)
	}
	// The five pre-snapshot updates must be truncated away.
	if len(rec.Updates) != 1 || string(rec.Updates[0].Payload) != "post" {
		t.Fatalf("log not truncated to post-snapshot records: %+v", rec.Updates)
	}
	if c := rec.AdvertisedCoverage(); c != 6 {
		t.Fatalf("advertised coverage = %d, want 6", c)
	}
}

func TestRotationKeepsAllRecords(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 128, Policy: FsyncNone})
	const n = 50
	for i := 1; i <= n; i++ {
		if err := s.AppendUpdate(upd(0, uint64(i), oal.Ordinal(i), strings.Repeat("p", 20))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) < 3 {
		t.Fatalf("expected several segments, got %v", files)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if len(rec.Updates) != n || len(rec.Discarded) != 0 {
		t.Fatalf("recovered %d/%d updates (%v)", len(rec.Updates), n, rec.Discarded)
	}
}

// lastSegment returns the path of the newest log segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) == 0 {
		t.Fatal("no segments")
	}
	last := files[0]
	for _, f := range files {
		if f > last {
			last = f
		}
	}
	return last
}

func writeLog(t *testing.T, dir string, n int) {
	t.Helper()
	s, _ := mustOpen(t, Options{Dir: dir, Policy: FsyncAlways})
	for i := 1; i <= n; i++ {
		if err := s.AppendUpdate(upd(0, uint64(i), oal.Ordinal(i), "payload")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
}

func TestTornFinalRecordIsTruncated(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 4)
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last record mid-frame: a crash during the final append.
	if err := os.WriteFile(seg, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	s, rec := mustOpen(t, Options{Dir: dir})
	defer s.Close()
	if !rec.TornTail {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	if len(rec.Updates) != 3 {
		t.Fatalf("want the 3 intact records, got %d", len(rec.Updates))
	}
	// The repair must stick: a second recovery is clean.
	s.Close()
	_, rec2 := mustOpen(t, Options{Dir: dir})
	if rec2.TornTail || len(rec2.Updates) != 3 {
		t.Fatalf("repair did not persist: %+v", rec2)
	}
}

func TestCorruptCRCDiscardsFromThatPoint(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 4)
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the second record. Record boundaries:
	// walk the frames.
	off := 0
	n, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	off += n
	raw[off+frameHeaderLen+3] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if len(rec.Updates) != 1 {
		t.Fatalf("want only the record before the corruption, got %d", len(rec.Updates))
	}
	if len(rec.Discarded) == 0 {
		t.Fatal("corruption not reported")
	}
	if rec.TornTail {
		t.Fatal("CRC corruption must not be classified as a torn tail")
	}
}

func TestVersionMismatchFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir, Policy: FsyncAlways})
	s.AppendUpdate(upd(0, 1, 1, "a")) //nolint:errcheck
	if err := s.WriteSnapshot(SnapshotMeta{Lineage: 1, Covered: 1}, []byte("st")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Bump the version byte inside the snapshot body and refresh the
	// CRC so only the version check can reject it.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots: %v", snaps)
	}
	raw, _ := os.ReadFile(snaps[0])
	body := append([]byte(nil), raw[frameHeaderLen:]...)
	body[0] = Version + 1
	if err := os.WriteFile(snaps[0], frame(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if rec.HaveSnapshot {
		t.Fatal("version-mismatched snapshot was accepted")
	}
	found := false
	for _, d := range rec.Discarded {
		if strings.Contains(d, "version") {
			found = true
		}
	}
	if !found {
		t.Fatalf("version mismatch not reported: %v", rec.Discarded)
	}
}

func TestMarkerWithoutSnapshotDiscardsAll(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir, Policy: FsyncAlways})
	s.AppendUpdate(upd(0, 1, 1, "a")) //nolint:errcheck
	if err := s.WriteSnapshot(SnapshotMeta{Lineage: 1, Covered: 1}, []byte("st")); err != nil {
		t.Fatal(err)
	}
	s.AppendUpdate(upd(0, 2, 2, "b")) //nolint:errcheck
	s.Close()
	// Delete the snapshot file: the marker now points at nothing, and
	// the pre-snapshot records are already truncated away.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	for _, p := range snaps {
		os.Remove(p)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if !rec.Empty() {
		t.Fatalf("marker without snapshot must force a full transfer: %+v", rec)
	}
	if len(rec.Discarded) == 0 {
		t.Fatal("missing snapshot not reported")
	}
}

func TestReplaySince(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir, Policy: FsyncNone})
	defer s.Close()
	for i := 1; i <= 6; i++ {
		s.AppendUpdate(upd(0, uint64(i), oal.Ordinal(i), "x")) //nolint:errcheck
	}
	got, ok := s.ReplaySince(4)
	if !ok || len(got) != 2 || got[0].Ordinal != 5 || got[1].Ordinal != 6 {
		t.Fatalf("ReplaySince(4) = %v, %v", got, ok)
	}
	if err := s.WriteSnapshot(SnapshotMeta{Covered: 4}, []byte("s")); err != nil {
		t.Fatal(err)
	}
	// Retention is count-based (TailKeep), not snapshot-driven: the
	// snapshot leaves the servable window untouched, so a member that
	// went down well before it can still fetch a delta.
	if got, ok := s.ReplaySince(2); !ok || len(got) != 4 {
		t.Fatalf("ReplaySince(2) after snapshot = %v, %v", got, ok)
	}
}

func TestReplayTailKeepBound(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir, Policy: FsyncNone, TailKeep: 3})
	defer s.Close()
	for i := 1; i <= 6; i++ {
		s.AppendUpdate(upd(0, uint64(i), oal.Ordinal(i), "x")) //nolint:errcheck
	}
	// Only the most recent 3 updates are retained; the floor rose to
	// the highest pruned ordinal.
	if f := s.TailFloor(); f != 3 {
		t.Fatalf("tail floor = %d, want 3", f)
	}
	if _, ok := s.ReplaySince(2); ok {
		t.Fatal("ReplaySince below the pruned floor must fail")
	}
	got, ok := s.ReplaySince(3)
	if !ok || len(got) != 3 || got[0].Ordinal != 4 {
		t.Fatalf("ReplaySince(3) = %v, %v", got, ok)
	}
}

func TestReplayTailSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 5)
	s, _ := mustOpen(t, Options{Dir: dir})
	defer s.Close()
	got, ok := s.ReplaySince(2)
	if !ok || len(got) != 3 {
		t.Fatalf("reopened tail: %v, %v", got, ok)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncBatched, FsyncNone} {
		dir := t.TempDir()
		s, _ := mustOpen(t, Options{Dir: dir, Policy: pol})
		for i := 1; i <= 3; i++ {
			if err := s.AppendUpdate(upd(0, uint64(i), oal.Ordinal(i), "x")); err != nil {
				t.Fatalf("%v: %v", pol, err)
			}
		}
		st := s.Stats()
		if pol == FsyncAlways && st.Syncs < 3 {
			t.Fatalf("always: %d syncs", st.Syncs)
		}
		s.Close()
		_, rec := mustOpen(t, Options{Dir: dir})
		if len(rec.Updates) != 3 {
			t.Fatalf("%v: recovered %d", pol, len(rec.Updates))
		}
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "batched": FsyncBatched, "none": FsyncNone, "": FsyncBatched,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("wat"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestAdvertisedCoverageStopsAtGap(t *testing.T) {
	rec := &Recovery{
		Meta: SnapshotMeta{Covered: 2},
		Updates: []UpdateRecord{
			upd(0, 1, 3, "a"), upd(0, 2, 5, "gap"), // 4 missing
		},
	}
	if c := rec.AdvertisedCoverage(); c != 3 {
		t.Fatalf("coverage = %d, want 3 (stop at the gap)", c)
	}
}

func TestClosedStoreRejectsAppends(t *testing.T) {
	s, _ := mustOpen(t, Options{Dir: t.TempDir()})
	s.Close()
	if err := s.AppendUpdate(upd(0, 1, 1, "x")); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
