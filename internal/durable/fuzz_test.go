package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// seedFrames aliases the exported seed corpus shared with the wire
// codec's fuzz harness.
func seedFrames() [][]byte { return FuzzSeedFrames() }

// FuzzRecord feeds arbitrary bytes through the frame decoder and, for
// frames that decode, checks re-encoding is the identity — the same
// contract the wire codec's FuzzDecode enforces.
func FuzzRecord(f *testing.F) {
	for _, s := range seedFrames() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		body, _, err := splitFrame(data)
		if err != nil {
			t.Fatalf("DecodeFrame accepted what splitFrame rejects: %v", err)
		}
		r, err := decodeBody(body)
		if err != nil {
			t.Fatalf("DecodeFrame accepted what decodeBody rejects: %v", err)
		}
		var re []byte
		switch r.kind {
		case kindUpdate:
			re = encodeUpdate(r.index, r.update)
		case kindView:
			re = encodeView(r.index, r.view)
		case kindSnapMark:
			re = encodeSnapMark(r.index, r.snapTo, r.lineage)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", data[:n], re)
		}
	})
}

// FuzzSnapshotBody does the same for the snapshot-file body.
func FuzzSnapshotBody(f *testing.F) {
	for _, s := range seedFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		body, _, err := splitFrame(data)
		if err != nil {
			return
		}
		idx, meta, app, err := decodeSnapshotBody(body)
		if err != nil {
			return
		}
		re := encodeSnapshot(idx, meta, app)
		reBody, _, err := splitFrame(re)
		if err != nil || !bytes.Equal(reBody, body) {
			t.Fatalf("snapshot re-encode mismatch: %v", err)
		}
	})
}

// FuzzRecoverScan writes arbitrary bytes as a segment file and opens
// the store: recovery must never panic, never error on garbage (it
// repairs the log instead), and a second open must be clean.
func FuzzRecoverScan(f *testing.F) {
	var log []byte
	for _, s := range seedFrames()[:3] {
		log = append(log, s...)
	}
	f.Add(log)
	f.Add(log[:len(log)-4])
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, _, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open on fuzzed log errored: %v", err)
		}
		s.Close()
		s2, rec, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("second Open errored: %v", err)
		}
		if rec.TornTail {
			t.Fatal("torn tail survived the repair")
		}
		s2.Close()
	})
}
