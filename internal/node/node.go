// Package node assembles a complete timewheel process — synchronized
// clock, failure detector, group creator, and atomic broadcast — on top
// of the deterministic simulation kernel, and groups N of them into a
// Cluster wired through the simulated datagram network.
//
// This is the execution substrate for the integration tests, the
// scenario library, the examples and the benchmark harness. The same
// protocol state machines also run in real time over UDP (package
// timewheel at the module root).
package node

import (
	"fmt"
	"path/filepath"

	"timewheel/internal/adapt"
	"timewheel/internal/broadcast"
	"timewheel/internal/clock"
	"timewheel/internal/csync"
	"timewheel/internal/durable"
	"timewheel/internal/fdetect"
	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/oal"
	"timewheel/internal/sim"
	"timewheel/internal/surveil"
	"timewheel/internal/wire"
)

// Options configures a simulated cluster.
type Options struct {
	Seed   int64
	Params model.Params
	// Delay is the network delay model; nil uses netsim's default
	// (uniform in [delta/10, delta/2]).
	Delay netsim.DelayFn
	// Drop is the background omission probability per delivery.
	Drop float64
	// PerfectClocks disables clock drift and the synchronization
	// service: every node reads the simulation clock directly. Protocol
	// experiments default to this; clock-stack experiments turn it off.
	PerfectClocks bool
	// MaxClockOffset bounds the initial hardware clock offsets when
	// PerfectClocks is false.
	MaxClockOffset model.Duration
	// DeciderHold overrides the decider batching window (default D/2).
	DeciderHold model.Duration
	// DisableFastPath forces every failure through the reconfiguration
	// election (ablation).
	DisableFastPath bool
	// RoundTripSync switches the clock synchronization service to
	// probe/echo round trips with measured error bounds (the fail-aware
	// mechanism proper) instead of one-way beacon adoption. Only
	// meaningful with PerfectClocks disabled.
	RoundTripSync bool
	// DataDir, when set, gives every node a durable store (write-ahead
	// log + snapshots) in DataDir/node-<id>: Crash abandons the store as
	// kill -9 would, and Recover reopens it and rejoins warm from the
	// recovered state instead of starting empty.
	DataDir string
	// Fsync is the durable store's fsync policy (default batched).
	Fsync durable.FsyncPolicy
	// SnapshotEvery writes an application snapshot after that many
	// logged deliveries (default 64; only meaningful with DataDir).
	SnapshotEvery int
	// FullOALEvery forwards to broadcast.Config.FullOALEvery: every
	// n-th decision carries the full oal between delta-encoded ones
	// (0 = the broadcast layer's default cadence, negative = disable
	// delta encoding entirely, every decision full).
	FullOALEvery int
	// RecordWire appends every control send/receive (with its causal
	// context) to Node.WireLog — the input of the cross-node timeline
	// merge (internal/trace.MergeSim). Off by default: wire events are
	// the protocol's highest-volume stream and long soak runs would
	// accumulate them without bound.
	RecordWire bool
	// Adaptive enables per-peer adaptive timeliness estimation on every
	// node's failure detector (the same estimator the live node wires
	// with Config.Adaptive) — chaos scenarios with degraded links need
	// it so slow-but-healthy peers widen their deadlines instead of
	// being ejected.
	Adaptive bool
	// SurveillanceK, when positive, enables k-successor surveillance
	// with gossiped suspicions (member.Config.Surveillance) on every
	// node. Zero keeps the all-to-all scheme.
	SurveillanceK int
	// SlotBatch enables sender-side slot-boundary micro-batching on the
	// simulated network (netsim.EnableSlotBatch) — the sim twin of the
	// live node's Config.SlotBatch coalescer. Frames buffer per
	// destination and go out as one datagram at the sender's slot edge
	// or its own timer tick, whichever is first.
	SlotBatch bool
}

// ViewRecord is one installed membership view.
type ViewRecord struct {
	Group model.Group
	At    model.Time // real (simulation) time
}

// StateRecord is one FSM transition.
type StateRecord struct {
	From, To member.State
	At       model.Time
}

// DeciderRecord is one interval during which the node held the decider
// role. End is zero while the interval is still open. Sent records
// whether the tenure produced a decision: a decider-elect that learns of
// a fresher decision relinquishes without sending, which is a benign,
// unavoidable transient while messages are in flight.
type DeciderRecord struct {
	Start, End model.Time
	Sent       bool
}

// DeliveryRecord is one update delivery, tagged with the node's
// incarnation (crash/recovery bumps it).
type DeliveryRecord struct {
	broadcast.Delivery
	At          model.Time
	Incarnation int
}

// WireRecord is one control-message send or receive with the causal
// context the frame carries (recorded only with Options.RecordWire).
// At is the node's synchronized clock reading, so cross-node edges in
// the merged timeline are subject to the ε clock bound, exactly as on
// real hosts.
type WireRecord struct {
	Dir  member.WireDir
	Kind wire.Kind
	Peer model.ProcessID // send: unicast destination (NoProcess = broadcast); recv: sender
	Ctx  wire.Causal
	At   model.Time
}

// Node is one simulated timewheel process.
type Node struct {
	ID      model.ProcessID
	cluster *Cluster

	hw   *clock.Hardware
	adj  *clock.Adjusted
	sync *csync.Service

	bc      *broadcast.Broadcast
	machine *member.Machine

	timers  map[member.TimerID]*sim.Timer
	crashed bool

	// deciderSent snapshots the decision counter at role start, to mark
	// DeciderRecord.Sent at role end.
	deciderSent uint64

	// Incarnation counts crash/recovery cycles.
	Incarnation int

	// store is the node's durable store (nil without Options.DataDir);
	// sinceSnap counts logged deliveries since the last snapshot.
	store     *durable.Store
	sinceSnap int

	// Installs counts full state-transfer installs — a warm (delta)
	// rejoin must not bump it.
	Installs int

	// Observability.
	Deliveries []DeliveryRecord
	Views      []ViewRecord
	StateLog   []StateRecord
	DeciderLog []DeciderRecord
	WireLog    []WireRecord // only with Options.RecordWire

	// appState is the toy replicated state used when the application
	// does not install its own snapshot hooks.
	appState []byte
}

// Cluster is a set of simulated nodes on one network.
type Cluster struct {
	Sim    *sim.Sim
	Net    *netsim.Network
	Params model.Params
	Opts   Options
	Nodes  []*Node
}

// NewCluster builds (but does not start) a cluster of opts.Params.N
// nodes.
func NewCluster(opts Options) *Cluster {
	if opts.Params.N == 0 {
		panic("node: Options.Params must be set")
	}
	if err := opts.Params.Validate(); err != nil {
		panic(fmt.Sprintf("node: invalid params: %v", err))
	}
	s := sim.New(opts.Seed)
	c := &Cluster{
		Sim:    s,
		Net:    netsim.New(s, opts.Params, opts.Delay, opts.Drop),
		Params: opts.Params,
		Opts:   opts,
	}
	if opts.SlotBatch {
		c.Net.EnableSlotBatch(0)
	}
	for i := 0; i < opts.Params.N; i++ {
		c.Nodes = append(c.Nodes, c.newNode(model.ProcessID(i)))
	}
	if !opts.PerfectClocks {
		c.startClockSync()
	}
	return c
}

func (c *Cluster) newNode(id model.ProcessID) *Node {
	n := &Node{
		ID:      id,
		cluster: c,
		timers:  make(map[member.TimerID]*sim.Timer),
	}
	if c.Opts.PerfectClocks {
		n.hw = &clock.Hardware{}
		n.adj = clock.NewAdjusted(n.hw)
		n.adj.Apply(0)
	} else {
		maxOff := c.Opts.MaxClockOffset
		if maxOff == 0 {
			maxOff = c.Params.Epsilon
		}
		n.hw = clock.NewRandomHardware(c.Sim.Rand(), maxOff, c.Params.RhoPPM)
		n.adj = clock.NewAdjusted(n.hw)
		n.sync = csync.New(id, c.Params, csync.DefaultConfig(c.Params), n.adj)
	}
	rec := n.openStore()
	n.buildStack()
	n.applyRecovery(rec)
	c.Net.Register(id, func(m wire.Message) {
		if !n.crashed {
			n.machine.OnMessage(m)
		}
	})
	return n
}

// openStore opens (or reopens, on recovery) the node's durable store
// and returns what it recovered from disk; nil without a data
// directory.
func (n *Node) openStore() *durable.Recovery {
	if n.cluster.Opts.DataDir == "" {
		return nil
	}
	st, rec, err := durable.Open(durable.Options{
		Dir:    filepath.Join(n.cluster.Opts.DataDir, fmt.Sprintf("node-%d", n.ID)),
		Policy: n.cluster.Opts.Fsync,
	})
	if err != nil {
		panic(fmt.Sprintf("node %d: durable store: %v", n.ID, err))
	}
	n.store = st
	return rec
}

// applyRecovery rebuilds the node's application and delivery state from
// what the durable store recovered: the snapshot is the base, the
// logged updates are re-applied on top, and the broadcast layer is
// seeded so nothing recovered is ever re-delivered — and so the join
// message advertises the recovered coverage for a delta rejoin.
func (n *Node) applyRecovery(rec *durable.Recovery) {
	if rec == nil || rec.Empty() {
		return
	}
	if rec.HaveSnapshot {
		n.appState = append([]byte(nil), rec.AppState...)
	}
	img := broadcast.Image{
		Lineage:   rec.Lineage(),
		Covered:   rec.AdvertisedCoverage(),
		SettledTS: rec.Meta.SettledTS,
	}
	for _, x := range rec.Meta.Extra {
		img.Extra = append(img.Extra, broadcast.ImageExtra{ID: x.ID, Ordinal: x.Ordinal})
	}
	for _, u := range rec.Updates {
		n.appState = append(n.appState, u.Payload...)
		n.appState = append(n.appState, ';')
		img.Extra = append(img.Extra, broadcast.ImageExtra{ID: u.ID, Ordinal: u.Ordinal})
	}
	for _, f := range rec.Meta.FIFO {
		img.FIFO = append(img.FIFO, wire.FIFOEntry{Proposer: f.Proposer, Seq: f.Next})
	}
	n.bc.SeedRecovered(img)
}

// writeSnapshot persists the application state with the broadcast
// layer's matching delivery image and prunes the log behind it.
func (n *Node) writeSnapshot() {
	if n.store == nil {
		return
	}
	img := n.bc.SnapshotImage()
	meta := durable.SnapshotMeta{Lineage: img.Lineage, Covered: img.Covered, SettledTS: img.SettledTS}
	for _, x := range img.Extra {
		meta.Extra = append(meta.Extra, durable.ExtraEntry{ID: x.ID, Ordinal: x.Ordinal})
	}
	for _, f := range img.FIFO {
		meta.FIFO = append(meta.FIFO, durable.FIFOCursor{Proposer: f.Proposer, Next: f.Seq})
	}
	n.store.WriteSnapshot(meta, append([]byte(nil), n.appState...)) //nolint:errcheck // in-model omission
	n.sinceSnap = 0
}

// buildStack creates fresh broadcast and membership layers (initial boot
// and crash recovery).
func (n *Node) buildStack() {
	snapEvery := n.cluster.Opts.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 64
	}
	bcfg := broadcast.Config{
		FullOALEvery: n.cluster.Opts.FullOALEvery,
		OnDeliver: func(d broadcast.Delivery) {
			if n.store != nil {
				n.store.AppendUpdate(durable.UpdateRecord{ //nolint:errcheck
					ID: d.ID, Ordinal: d.Ordinal, Sem: d.Sem, SendTS: d.SendTS, Payload: d.Payload,
				})
			}
			n.Deliveries = append(n.Deliveries, DeliveryRecord{
				Delivery: d, At: n.cluster.Sim.Now(), Incarnation: n.Incarnation,
			})
			n.appState = append(n.appState, d.Payload...)
			n.appState = append(n.appState, ';')
			if n.store != nil {
				if n.sinceSnap++; n.sinceSnap >= snapEvery {
					n.writeSnapshot()
				}
			}
		},
		Snapshot: func() []byte { return append([]byte(nil), n.appState...) },
		Install: func(b []byte) {
			n.appState = append([]byte(nil), b...)
			n.Installs++
			// A full transfer rebases the application state: snapshot it
			// with the matching delivery image so the log restarts clean.
			n.writeSnapshot()
		},
	}
	if n.store != nil {
		bcfg.OnLineage = func(lin model.GroupSeq) {
			// A lineage boundary restarts the ordinal space: mark it in
			// the log (recovery then knows post-boundary ordinals are
			// incomparable with the snapshot's) and drop the replay tail.
			n.store.AppendView(durable.ViewRecord{Lineage: lin, Ordinal: oal.None}) //nolint:errcheck
			n.store.ResetTail(0)
		}
		bcfg.ReplaySince = func(since oal.Ordinal) ([]wire.ReplayEntry, bool) {
			recs, ok := n.store.ReplaySince(since)
			if !ok {
				return nil, false
			}
			out := make([]wire.ReplayEntry, 0, len(recs))
			for _, u := range recs {
				out = append(out, wire.ReplayEntry{
					ID: u.ID, Ordinal: u.Ordinal, Sem: u.Sem, SendTS: u.SendTS, Payload: u.Payload,
				})
			}
			return out, true
		}
	}
	n.bc = broadcast.New(n.ID, n.cluster.Params, bcfg)
	n.machine = member.New(n.ID, n.cluster.Params, member.Config{
		DeciderHold:     n.cluster.Opts.DeciderHold,
		DisableFastPath: n.cluster.Opts.DisableFastPath,
		Surveillance:    surveil.Config{K: n.cluster.Opts.SurveillanceK},
		Hooks: member.Hooks{
			StateChange: func(from, to member.State, _ model.Time) {
				n.StateLog = append(n.StateLog, StateRecord{From: from, To: to, At: n.cluster.Sim.Now()})
				if to == member.StateJoin && from != member.StateJoin {
					// Exclusion wiped the protocol state (resetForJoin):
					// deliveries after the rejoin are a new epoch, rebased
					// by the join-time state transfer.
					n.Incarnation++
				}
			},
			ViewChange: func(g model.Group, _ model.Time) {
				n.Views = append(n.Views, ViewRecord{Group: g, At: n.cluster.Sim.Now()})
				if n.store != nil {
					// Membership descriptors occupy ordinals; logging the
					// view with its ordinal lets recovery count it toward
					// contiguous coverage.
					n.store.AppendView(durable.ViewRecord{ //nolint:errcheck
						Seq:     g.Seq,
						Members: append([]model.ProcessID(nil), g.Members...),
						Ordinal: n.bc.MembershipOrdinal(g.Seq),
						Lineage: n.bc.Lineage(),
					})
				}
			},
			Decider: func(isDecider bool, _ model.Time) {
				at := n.cluster.Sim.Now()
				if isDecider {
					n.DeciderLog = append(n.DeciderLog, DeciderRecord{Start: at})
					n.deciderSent = n.machine.Stats().DecisionsSent
				} else if k := len(n.DeciderLog) - 1; k >= 0 && n.DeciderLog[k].End == 0 {
					n.DeciderLog[k].End = at
					n.DeciderLog[k].Sent = n.machine.Stats().DecisionsSent > n.deciderSent
				}
			},
			WireEvent: func(dir member.WireDir, kind wire.Kind, peer model.ProcessID, ctx wire.Causal, at model.Time) {
				if n.cluster.Opts.RecordWire {
					n.WireLog = append(n.WireLog, WireRecord{Dir: dir, Kind: kind, Peer: peer, Ctx: ctx, At: at})
				}
			},
		},
	}, (*nodeEnv)(n), n.bc)
	if n.cluster.Opts.Adaptive {
		n.machine.Detector().EnableAdaptive(
			simDelayAdapter{adapt.NewDelayEstimator(adapt.Config{})},
			fdetect.AdaptiveConfig{},
		)
	}
}

// simDelayAdapter lifts adapt.DelayEstimator (time.Duration, int peers)
// to fdetect.DelayEstimator (model units, ProcessID peers) — the sim
// twin of the live node's adapter in the root package.
type simDelayAdapter struct{ est *adapt.DelayEstimator }

func (a simDelayAdapter) Observe(peer model.ProcessID, d model.Duration) {
	a.est.Observe(int(peer), d.Std())
}

func (a simDelayAdapter) Bound(peer model.ProcessID) (model.Duration, bool) {
	b, ok := a.est.Bound(int(peer))
	return model.FromStd(b), ok
}

// Start boots every node.
func (c *Cluster) Start() {
	for _, n := range c.Nodes {
		n.machine.Start()
	}
}

// Run advances the simulation by d.
func (c *Cluster) Run(d model.Duration) { c.Sim.RunFor(d) }

// Node returns the node with the given ID.
func (c *Cluster) Node(id model.ProcessID) *Node { return c.Nodes[int(id)] }

// Crash fails node id: it stops sending, receiving and reacting.
func (c *Cluster) Crash(id model.ProcessID) {
	n := c.Nodes[int(id)]
	n.crashed = true
	if k := len(n.DeciderLog) - 1; k >= 0 && n.DeciderLog[k].End == 0 {
		n.DeciderLog[k].End = c.Sim.Now()
	}
	c.Net.Crash(id)
	for _, t := range n.timers {
		t.Stop()
	}
	n.timers = make(map[member.TimerID]*sim.Timer)
	if n.store != nil {
		// kill -9: no final sync, no snapshot — recovery must cope with
		// whatever the log holds.
		n.store.Abandon()
		n.store = nil
	}
}

// Recover restarts node id with a fresh protocol stack (a recovered
// process rejoins through the join protocol; its pre-crash volatile
// state is gone). With a data directory the restart recovers the
// durable state first — the application state is rebuilt from the
// snapshot plus the log, and the rejoin fetches only the delta.
func (c *Cluster) Recover(id model.ProcessID) {
	n := c.Nodes[int(id)]
	if !n.crashed {
		return
	}
	n.crashed = false
	n.Incarnation++
	n.appState = nil
	n.sinceSnap = 0
	c.Net.Recover(id)
	if n.sync != nil {
		n.sync.Forget()
	}
	rec := n.openStore()
	n.buildStack()
	n.applyRecovery(rec)
	n.machine.Start()
}

// Crashed reports whether node id is down.
func (c *Cluster) Crashed(id model.ProcessID) bool { return c.Nodes[int(id)].crashed }

// Machine exposes a node's group creator (tests and checks).
func (n *Node) Machine() *member.Machine { return n.machine }

// Broadcast exposes a node's broadcast layer.
func (n *Node) Broadcast() *broadcast.Broadcast { return n.bc }

// Store exposes a node's durable store; nil without Options.DataDir
// (and while crashed).
func (n *Node) Store() *durable.Store { return n.store }

// SyncedNow returns the node's synchronized-clock reading.
func (n *Node) SyncedNow() model.Time { return n.adj.Read(n.cluster.Sim.Now()) }

// Propose broadcasts an update from this node; returns false if the node
// is crashed or not currently a group member.
func (n *Node) Propose(payload []byte, sem oal.Semantics) bool {
	if n.crashed {
		return false
	}
	return n.machine.Propose(payload, sem) != nil
}

// CurrentGroup returns the node's current group and whether it has one.
func (n *Node) CurrentGroup() (model.Group, bool) {
	return n.machine.Group(), n.machine.HaveGroup() && n.machine.State() != member.StateJoin
}

// State returns the node's FSM state.
func (n *Node) State() member.State { return n.machine.State() }

// AppState returns a copy of the node's application state: the
// ';'-joined payloads of every ordered delivery, rebased by join-time
// state transfers. Two nodes whose total/strong deliveries agree have
// byte-identical app states.
func (n *Node) AppState() []byte { return append([]byte(nil), n.appState...) }

// nodeEnv adapts Node to member.Env. Synchronized-clock deadlines are
// converted to simulation time through the node's adjusted clock; the
// residual drift error (<= rho * horizon) is absorbed by the slot pad.
type nodeEnv Node

func (e *nodeEnv) Now() model.Time { return (*Node)(e).SyncedNow() }

func (e *nodeEnv) Broadcast(m wire.Message) {
	if !e.crashed {
		e.cluster.Net.Broadcast(m)
	}
}

func (e *nodeEnv) Unicast(to model.ProcessID, m wire.Message) {
	if !e.crashed {
		e.cluster.Net.Unicast(to, m)
	}
}

func (e *nodeEnv) SetTimer(id member.TimerID, at model.Time) {
	n := (*Node)(e)
	if t, ok := n.timers[id]; ok {
		t.Stop()
	}
	// Convert the synchronized-clock deadline to simulation time.
	delay := model.Duration(at - n.SyncedNow())
	if delay < 0 {
		delay = 0
	}
	n.timers[id] = n.cluster.Sim.After(delay, func() {
		if !n.crashed {
			n.machine.OnTimer(id)
			// Timer-path flush hook (the live coalescer's contract):
			// whatever the tick produced — no-decision votes, decisions,
			// fdetect probes — leaves before the handler returns, so
			// deadline-bearing traffic is never held to the slot edge.
			n.cluster.Net.FlushSender(n.ID)
		}
	})
}

func (e *nodeEnv) CancelTimer(id member.TimerID) {
	n := (*Node)(e)
	if t, ok := n.timers[id]; ok {
		t.Stop()
		delete(n.timers, id)
	}
}

// syncDelay draws a one-way delay for clock-sync traffic from the same
// model as the protocol network.
func (c *Cluster) syncDelay(from, to model.ProcessID) model.Duration {
	if c.Opts.Delay != nil {
		return c.Opts.Delay(c.Sim.Rand(), from, to)
	}
	return c.Params.Delta/10 + model.Duration(c.Sim.Rand().Int63n(int64(c.Params.Delta/3)))
}

// startClockSync runs the clock synchronization service over the same
// delay model as the protocol network: beacons always (master election,
// freshness, and — in beacon mode — correction), plus probe/echo round
// trips when Options.RoundTripSync is set.
func (c *Cluster) startClockSync() {
	interval := csync.DefaultConfig(c.Params).Interval
	for _, n := range c.Nodes {
		n := n
		if c.Opts.RoundTripSync {
			n.sync.SetRoundTripOnly(true)
		}
		var tick func()
		tick = func() {
			if !n.crashed {
				b := n.sync.Tick(c.Sim.Now())
				for _, peer := range c.Nodes {
					if peer == n {
						continue
					}
					peer := peer
					d := c.syncDelay(n.ID, peer.ID)
					c.Sim.After(d, func() {
						if !peer.crashed && !n.crashed && c.Net.Connected(n.ID, peer.ID) {
							peer.sync.OnBeacon(c.Sim.Now(), b)
						}
					})
				}
				if c.Opts.RoundTripSync {
					c.probeMaster(n)
				}
			}
			c.Sim.After(interval, tick)
		}
		c.Sim.Schedule(model.Time(int64(n.ID)*997), tick)
	}
}

// probeMaster runs one probe/echo round trip from n to its current
// master.
func (c *Cluster) probeMaster(n *Node) {
	p, master, ok := n.sync.MakeProbe(c.Sim.Now())
	if !ok {
		return
	}
	m := c.Nodes[int(master)]
	c.Sim.After(c.syncDelay(n.ID, m.ID), func() {
		if m.crashed || !c.Net.Connected(n.ID, m.ID) {
			return
		}
		echo := m.sync.OnProbe(c.Sim.Now(), p)
		c.Sim.After(c.syncDelay(m.ID, n.ID), func() {
			if !n.crashed && c.Net.Connected(n.ID, m.ID) {
				n.sync.OnEcho(c.Sim.Now(), echo)
			}
		})
	})
}
