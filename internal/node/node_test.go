package node

import (
	"testing"

	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

func perfectCluster(n int, seed int64) *Cluster {
	return NewCluster(Options{
		Seed:          seed,
		Params:        model.DefaultParams(n),
		PerfectClocks: true,
	})
}

// formed reports whether every live node has installed an identical
// group containing exactly the given members.
func formed(c *Cluster, want []model.ProcessID) bool {
	wantG := model.NewGroup(0, want)
	for _, n := range c.Nodes {
		if n.crashed {
			continue
		}
		if !wantG.Contains(n.ID) {
			continue // non-members are allowed to still be joining
		}
		g, ok := n.CurrentGroup()
		if !ok || !g.SameMembers(wantG) {
			return false
		}
	}
	return true
}

func cycles(c *Cluster, k int) model.Duration {
	return model.Duration(k) * c.Params.CycleLen()
}

func TestInitialGroupFormation(t *testing.T) {
	c := perfectCluster(5, 1)
	c.Start()
	c.Run(cycles(c, 4))
	all := []model.ProcessID{0, 1, 2, 3, 4}
	if !formed(c, all) {
		for _, n := range c.Nodes {
			t.Logf("p%d: state=%v group=%v", n.ID, n.State(), n.Machine().Group())
		}
		t.Fatalf("initial group not formed after 4 cycles")
	}
	// Every member installed the same first view.
	ref := c.Nodes[0].Views[0].Group
	for _, n := range c.Nodes {
		if len(n.Views) == 0 || !n.Views[0].Group.Equal(ref) {
			t.Fatalf("p%d views: %v", n.ID, n.Views)
		}
	}
}

func TestFormationAcrossTeamSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 13} {
		c := perfectCluster(n, int64(n))
		c.Start()
		c.Run(cycles(c, 5))
		var all []model.ProcessID
		for i := 0; i < n; i++ {
			all = append(all, model.ProcessID(i))
		}
		if !formed(c, all) {
			t.Errorf("N=%d: group not formed", n)
		}
	}
}

func TestFailureFreeSendsNoMembershipMessages(t *testing.T) {
	c := perfectCluster(5, 2)
	c.Start()
	c.Run(cycles(c, 4))
	if !formed(c, []model.ProcessID{0, 1, 2, 3, 4}) {
		t.Fatalf("formation failed")
	}
	before := c.Net.Stats()
	c.Run(cycles(c, 20))
	after := c.Net.Stats()

	// The paper's headline claim: in failure-free periods the membership
	// protocol sends zero messages. Only decisions (the broadcast
	// protocol's own traffic) flow.
	for _, k := range []wire.Kind{wire.KindJoin, wire.KindNoDecision, wire.KindReconfig} {
		if d := after.Broadcasts[k] - before.Broadcasts[k]; d != 0 {
			t.Errorf("%v messages during failure-free period: %d", k, d)
		}
	}
	if d := after.Broadcasts[wire.KindDecision] - before.Broadcasts[wire.KindDecision]; d == 0 {
		t.Errorf("no decisions flowed — group is not live")
	}
}

func TestDeciderRotation(t *testing.T) {
	c := perfectCluster(3, 3)
	c.Start()
	c.Run(cycles(c, 8))
	// Every member must have sent decisions (the role rotates).
	for _, n := range c.Nodes {
		if n.Machine().Stats().DecisionsSent == 0 {
			t.Errorf("p%d never held the decider role", n.ID)
		}
	}
}

func TestSingleFailureElectionRemovesCrashedDecider(t *testing.T) {
	c := perfectCluster(5, 4)
	c.Start()
	c.Run(cycles(c, 4))
	if !formed(c, []model.ProcessID{0, 1, 2, 3, 4}) {
		t.Fatalf("formation failed")
	}
	// Crash whoever is currently decider (or about to be).
	victim := model.ProcessID(2)
	c.Crash(victim)
	crashAt := c.Sim.Now()
	c.Run(cycles(c, 3))

	want := []model.ProcessID{0, 1, 3, 4}
	if !formed(c, want) {
		for _, n := range c.Nodes {
			t.Logf("p%d: state=%v group=%v", n.ID, n.State(), n.Machine().Group())
		}
		t.Fatalf("crashed decider not removed")
	}
	// The removal went through the single-failure fast path, not the
	// reconfiguration protocol.
	var singles, reconfigs uint64
	for _, n := range c.Nodes {
		if n.ID == victim {
			continue
		}
		st := n.Machine().Stats()
		singles += st.SingleElections
		reconfigs += st.ReconfigElections
	}
	if singles != 1 {
		t.Errorf("single-failure elections: %d, want 1", singles)
	}
	if reconfigs != 0 {
		t.Errorf("reconfiguration elections: %d, want 0", reconfigs)
	}
	// Recovery was fast: well within one cycle plus the detection bound.
	var worst model.Time
	for _, n := range c.Nodes {
		if n.ID == victim {
			continue
		}
		last := n.Views[len(n.Views)-1]
		if !last.Group.SameMembers(model.NewGroup(0, want)) {
			t.Fatalf("p%d last view: %v", n.ID, last.Group)
		}
		if last.At > worst {
			worst = last.At
		}
	}
	bound := model.Duration(4*c.Params.D) + cycles(c, 1)
	if got := worst.Sub(crashAt); got > bound {
		t.Errorf("single-failure recovery took %v, bound %v", got, bound)
	}
}

func TestFalseSuspicionDoesNotChangeMembership(t *testing.T) {
	c := perfectCluster(5, 5)
	c.Start()
	c.Run(cycles(c, 4))
	all := []model.ProcessID{0, 1, 2, 3, 4}
	if !formed(c, all) {
		t.Fatalf("formation failed")
	}
	viewsBefore := make(map[model.ProcessID]int)
	for _, n := range c.Nodes {
		viewsBefore[n.ID] = len(n.Views)
	}

	// Drop the next decision entirely: every member suspects the silent
	// decider, but the decider is alive and resends on the first
	// no-decision — a false alarm that must be masked.
	dropped := false
	c.Net.AddFilter(func(from, to model.ProcessID, m wire.Message) (netsim.Verdict, model.Duration) {
		if m.Kind() == wire.KindDecision && !dropped {
			return netsim.Drop, 0
		}
		if m.Kind() == wire.KindDecision {
			return netsim.Pass, 0
		}
		// Stop dropping after the first no-decision appears.
		if m.Kind() == wire.KindNoDecision {
			dropped = true
		}
		return netsim.Pass, 0
	})
	c.Run(cycles(c, 4))
	c.Net.ClearFilters()
	c.Run(cycles(c, 2))

	if !formed(c, all) {
		for _, n := range c.Nodes {
			t.Logf("p%d: state=%v group=%v stats=%+v", n.ID, n.State(), n.Machine().Group(), n.Machine().Stats())
		}
		t.Fatalf("false suspicion changed membership")
	}
	// No node installed a new view.
	for _, n := range c.Nodes {
		if len(n.Views) != viewsBefore[n.ID] {
			t.Errorf("p%d installed a new view on a false alarm: %v", n.ID, n.Views)
		}
	}
	// At least one node passed through wrong-suspicion.
	var ws uint64
	for _, n := range c.Nodes {
		ws += n.Machine().Stats().WrongSuspicions
	}
	if ws == 0 {
		t.Errorf("no node entered wrong-suspicion")
	}
}

func TestMultipleFailureReconfiguration(t *testing.T) {
	c := perfectCluster(5, 6)
	c.Start()
	c.Run(cycles(c, 4))
	if !formed(c, []model.ProcessID{0, 1, 2, 3, 4}) {
		t.Fatalf("formation failed")
	}
	// Two simultaneous crashes: the single-failure protocol cannot
	// complete (its ring is broken), forcing the time-slotted election.
	c.Crash(1)
	c.Crash(2)
	c.Run(cycles(c, 6))

	want := []model.ProcessID{0, 3, 4}
	if !formed(c, want) {
		for _, n := range c.Nodes {
			t.Logf("p%d: state=%v group=%v", n.ID, n.State(), n.Machine().Group())
		}
		t.Fatalf("double failure not recovered")
	}
	var reconfigs uint64
	for _, id := range want {
		reconfigs += c.Node(id).Machine().Stats().ReconfigElections
	}
	if reconfigs == 0 {
		t.Errorf("recovery did not use the reconfiguration election")
	}
}

func TestCrashRecoveryRejoin(t *testing.T) {
	c := perfectCluster(5, 7)
	c.Start()
	c.Run(cycles(c, 4))
	all := []model.ProcessID{0, 1, 2, 3, 4}
	if !formed(c, all) {
		t.Fatalf("formation failed")
	}
	c.Crash(4)
	c.Run(cycles(c, 3))
	if !formed(c, []model.ProcessID{0, 1, 2, 3}) {
		t.Fatalf("crash not detected")
	}
	c.Recover(4)
	c.Run(cycles(c, 6))
	if !formed(c, all) {
		for _, n := range c.Nodes {
			t.Logf("p%d: state=%v group=%v inc=%d", n.ID, n.State(), n.Machine().Group(), n.Incarnation)
		}
		t.Fatalf("recovered process not readmitted")
	}
	n4 := c.Node(4)
	if n4.State() != member.StateFailureFree {
		t.Fatalf("p4 state after rejoin: %v", n4.State())
	}
	// Rejoin went through an admission at some decider.
	var admissions uint64
	for _, n := range c.Nodes {
		admissions += n.Machine().Stats().Admissions
	}
	if admissions == 0 {
		t.Errorf("no admission recorded")
	}
}

func TestMajorityPartitionContinuesMinorityStalls(t *testing.T) {
	c := perfectCluster(5, 8)
	c.Start()
	c.Run(cycles(c, 4))
	all := []model.ProcessID{0, 1, 2, 3, 4}
	if !formed(c, all) {
		t.Fatalf("formation failed")
	}
	maj := []model.ProcessID{0, 1, 2}
	min := []model.ProcessID{3, 4}
	c.Net.Partition(maj, min)
	c.Run(cycles(c, 8))

	// Majority side reconfigures to {0,1,2}.
	for _, id := range maj {
		g, ok := c.Node(id).CurrentGroup()
		if !ok || !g.SameMembers(model.NewGroup(0, maj)) {
			t.Fatalf("majority member p%d group: %v (ok=%v)", id, g, ok)
		}
	}
	// Minority side must never form a group of two.
	for _, id := range min {
		g, ok := c.Node(id).CurrentGroup()
		if ok && len(g.Members) < c.Params.Majority() {
			t.Fatalf("minority member p%d formed sub-majority group %v", id, g)
		}
	}

	// Healing: the minority rejoins.
	c.Net.Heal()
	c.Run(cycles(c, 10))
	if !formed(c, all) {
		for _, n := range c.Nodes {
			t.Logf("p%d: state=%v group=%v", n.ID, n.State(), n.Machine().Group())
		}
		t.Fatalf("partition healing did not restore the full group")
	}
}

func TestBroadcastAcrossViewChange(t *testing.T) {
	c := perfectCluster(5, 9)
	c.Start()
	c.Run(cycles(c, 4))
	if !formed(c, []model.ProcessID{0, 1, 2, 3, 4}) {
		t.Fatalf("formation failed")
	}
	// Steady stream of total-order proposals while the decider crashes.
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	c.Node(0).Propose([]byte("u1"), sem)
	c.Run(cycles(c, 1))
	c.Node(3).Propose([]byte("u2"), sem)
	c.Crash(1)
	c.Node(4).Propose([]byte("u3"), sem)
	c.Run(cycles(c, 3))
	c.Node(0).Propose([]byte("u4"), sem)
	c.Run(cycles(c, 4))

	// All survivors delivered the same totally-ordered sequence
	// containing all four updates.
	ref := c.Node(0).Deliveries
	if len(ref) != 4 {
		t.Fatalf("p0 delivered %d updates: %v", len(ref), ref)
	}
	for _, id := range []model.ProcessID{3, 4} {
		got := c.Node(id).Deliveries
		if len(got) != len(ref) {
			t.Fatalf("p%d delivered %d, want %d", id, len(got), len(ref))
		}
		for i := range ref {
			if string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("p%d order diverges at %d: %q vs %q", id, i, got[i].Payload, ref[i].Payload)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	trace := func() []string {
		c := perfectCluster(5, 77)
		c.Start()
		c.Run(cycles(c, 3))
		c.Crash(2)
		c.Run(cycles(c, 5))
		var out []string
		for _, n := range c.Nodes {
			for _, v := range n.Views {
				out = append(out, v.Group.String()+"@"+v.At.String())
			}
		}
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic view counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestClusterWithDriftingClocksAndSync(t *testing.T) {
	c := NewCluster(Options{
		Seed:           11,
		Params:         model.DefaultParams(5),
		PerfectClocks:  false,
		MaxClockOffset: model.DefaultParams(5).Epsilon,
	})
	c.Start()
	c.Run(cycles(c, 6))
	if !formed(c, []model.ProcessID{0, 1, 2, 3, 4}) {
		for _, n := range c.Nodes {
			t.Logf("p%d: state=%v group=%v synced=%v", n.ID, n.State(), n.Machine().Group(), n.adj.Synced)
		}
		t.Fatalf("formation failed with drifting clocks")
	}
	// Crash the decider; recovery must still work on synchronized (not
	// perfect) clocks.
	c.Crash(0)
	c.Run(cycles(c, 4))
	if !formed(c, []model.ProcessID{1, 2, 3, 4}) {
		for _, n := range c.Nodes {
			t.Logf("p%d: state=%v group=%v", n.ID, n.State(), n.Machine().Group())
		}
		t.Fatalf("recovery failed with drifting clocks")
	}
}

func TestLossyNetworkStillConverges(t *testing.T) {
	c := NewCluster(Options{
		Seed:          13,
		Params:        model.DefaultParams(5),
		PerfectClocks: true,
		Drop:          0.02,
	})
	c.Start()
	c.Run(cycles(c, 10))
	if !formed(c, []model.ProcessID{0, 1, 2, 3, 4}) {
		// Under loss the group may legitimately have excluded a member;
		// require only that SOME majority group is agreed by its members.
		var found bool
		for _, n := range c.Nodes {
			g, ok := n.CurrentGroup()
			if ok && len(g.Members) >= c.Params.Majority() {
				found = true
			}
		}
		if !found {
			t.Fatalf("no majority group under 2%% loss")
		}
	}
}

func TestFailAwarenessThroughStack(t *testing.T) {
	// The paper's §3 fail-awareness: the minority side of a partition
	// KNOWS its view is not up to date.
	c := perfectCluster(5, 21)
	c.Start()
	c.Run(cycles(c, 4))
	if !formed(c, []model.ProcessID{0, 1, 2, 3, 4}) {
		t.Fatalf("formation failed")
	}
	for _, n := range c.Nodes {
		if !n.Machine().UpToDate() {
			t.Fatalf("p%d not up to date after formation", n.ID)
		}
	}
	c.Net.Partition([]model.ProcessID{0, 1, 2}, []model.ProcessID{3, 4})
	c.Run(cycles(c, 8))
	for _, id := range []model.ProcessID{0, 1, 2} {
		if !c.Node(id).Machine().UpToDate() {
			t.Errorf("majority member p%v lost fail-aware up-to-date", id)
		}
	}
	for _, id := range []model.ProcessID{3, 4} {
		if c.Node(id).Machine().UpToDate() {
			t.Errorf("minority member p%v claims an up-to-date view", id)
		}
	}
}

func TestSequenceUniquenessAcrossRecovery(t *testing.T) {
	// A crash-recovered proposer must never reuse a proposal ID from its
	// earlier life (volatile state is lost; sequences are clock-seeded).
	c := perfectCluster(5, 22)
	c.Start()
	c.Run(cycles(c, 4))
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.WeakAtomicity}
	c.Node(4).Propose([]byte("before"), sem)
	c.Run(cycles(c, 1))
	c.Crash(4)
	c.Run(cycles(c, 3))
	c.Recover(4)
	c.Run(cycles(c, 8))
	if !formed(c, []model.ProcessID{0, 1, 2, 3, 4}) {
		t.Fatalf("rejoin failed")
	}
	if !c.Node(4).Propose([]byte("after"), sem) {
		t.Fatalf("rejoined node cannot propose")
	}
	c.Run(cycles(c, 4))
	// Collect all p4-proposed IDs seen at p0: no duplicates with
	// different payload epochs.
	seen := make(map[uint64]int)
	for _, d := range c.Node(0).Deliveries {
		if d.ID.Proposer == 4 {
			seen[d.ID.Seq]++
			if seen[d.ID.Seq] > 1 {
				t.Fatalf("sequence %d reused by recovered proposer", d.ID.Seq)
			}
		}
	}
	if len(seen) != 2 {
		t.Fatalf("expected both updates delivered, got %d", len(seen))
	}
}

func TestLargeTeamFormationAndRecovery(t *testing.T) {
	// The AckSet representation supports teams up to 64; exercise a
	// deep ring (N=33) through formation, a decider crash, and the
	// fast-path election.
	const n = 33
	c := perfectCluster(n, 333)
	c.Start()
	c.Run(cycles(c, 5))
	var all []model.ProcessID
	for i := 0; i < n; i++ {
		all = append(all, model.ProcessID(i))
	}
	if !formed(c, all) {
		t.Fatalf("N=%d formation failed", n)
	}
	c.Crash(7)
	c.Run(cycles(c, 3))
	want := make([]model.ProcessID, 0, n-1)
	for i := 0; i < n; i++ {
		if i != 7 {
			want = append(want, model.ProcessID(i))
		}
	}
	if !formed(c, want) {
		for _, nd := range c.Nodes[:10] {
			t.Logf("p%d: state=%v group=%v", nd.ID, nd.State(), nd.Machine().Group())
		}
		t.Fatalf("N=%d crash recovery failed", n)
	}
	var singles uint64
	for _, nd := range c.Nodes {
		singles += nd.Machine().Stats().SingleElections
	}
	if singles != 1 {
		t.Errorf("single elections: %d", singles)
	}
}

func TestTerminationSemanticsThroughSimStack(t *testing.T) {
	// A proposal made just before the group collapses below majority is
	// reported abandoned to its proposer through the termination window.
	params := model.DefaultParams(3)
	c := NewCluster(Options{Seed: 55, Params: params, PerfectClocks: true})
	// Rebuild node 0's broadcast config is not exposed; instead verify
	// the broadcast-level semantic through the machine-driven sweep: use
	// the Broadcast directly on the live node.
	c.Start()
	c.Run(cycles(c, 4))
	if !formed(c, []model.ProcessID{0, 1, 2}) {
		t.Fatalf("formation failed")
	}
	// Arm a window retroactively via the exposed CheckTermination: the
	// node package does not configure OnOutcome, so this is covered by
	// the broadcast unit tests; here we only assert the sweep is driven
	// by the machine (no panic, no stall) while proposals flow.
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	c.Node(0).Propose([]byte("u"), sem)
	c.Run(cycles(c, 3))
	if len(c.Node(1).Deliveries) != 1 {
		t.Fatalf("delivery missing")
	}
}

func TestClusterWithRoundTripSync(t *testing.T) {
	// The full protocol stack over the fail-aware round-trip clock
	// synchronization: rounds are adopted only when the measured error
	// bound fits epsilon, so the network must allow it.
	params := model.DefaultParams(5)
	c := NewCluster(Options{
		Seed:           17,
		Params:         params,
		PerfectClocks:  false,
		RoundTripSync:  true,
		MaxClockOffset: params.Epsilon,
		Delay:          netsim.UniformDelay(params.Epsilon/4, params.Epsilon-1),
	})
	c.Start()
	c.Run(cycles(c, 6))
	if !formed(c, []model.ProcessID{0, 1, 2, 3, 4}) {
		for _, n := range c.Nodes {
			t.Logf("p%d: state=%v synced=%v", n.ID, n.State(), n.adj.Synced)
		}
		t.Fatalf("formation failed with round-trip sync")
	}
	c.Crash(1)
	c.Run(cycles(c, 4))
	if !formed(c, []model.ProcessID{0, 2, 3, 4}) {
		t.Fatalf("recovery failed with round-trip sync")
	}
}
