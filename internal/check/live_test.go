package check

import (
	"testing"
	"time"
)

func lt(ms int) time.Time {
	return time.Unix(1_700_000_000, 0).Add(time.Duration(ms) * time.Millisecond)
}

func TestLiveViewAgreement(t *testing.T) {
	ok := []LiveHistory{
		{ID: 0, Views: []LiveView{{Seq: 1, Members: []int{0, 1, 2}, At: lt(0)}}},
		{ID: 1, Views: []LiveView{{Seq: 1, Members: []int{0, 1, 2}, At: lt(1)}}},
		{ID: 2, Views: []LiveView{{Seq: 1, Members: []int{0, 1, 2}, At: lt(2)}}},
	}
	r := &Result{}
	LiveViewAgreement(ok, r)
	if !r.OK() {
		t.Fatalf("clean history flagged: %s", r)
	}

	// Two completed groups at the same seq with different members.
	split := []LiveHistory{
		{ID: 0, Views: []LiveView{{Seq: 2, Members: []int{0, 1}, At: lt(0)}}},
		{ID: 1, Views: []LiveView{{Seq: 2, Members: []int{0, 1}, At: lt(1)}}},
		{ID: 2, Views: []LiveView{{Seq: 2, Members: []int{2, 3}, At: lt(2)}}},
		{ID: 3, Views: []LiveView{{Seq: 2, Members: []int{2, 3}, At: lt(3)}}},
	}
	r = &Result{}
	LiveViewAgreement(split, r)
	if r.OK() {
		t.Fatalf("split brain not flagged")
	}

	// An uncompleted fork (node 2 never installed the rival view) is the
	// paper's allowed limited divergence.
	fork := []LiveHistory{
		{ID: 0, Views: []LiveView{{Seq: 2, Members: []int{0, 1}, At: lt(0)}}},
		{ID: 1, Views: []LiveView{{Seq: 2, Members: []int{0, 1}, At: lt(1)}}},
		{ID: 2, Views: []LiveView{{Seq: 2, Members: []int{2, 3}, At: lt(2)}}},
	}
	r = &Result{}
	LiveViewAgreement(fork, r)
	if !r.OK() {
		t.Fatalf("uncompleted fork flagged: %s", r)
	}
}

func TestLiveMajorityGroups(t *testing.T) {
	hs := []LiveHistory{
		{ID: 0, Views: []LiveView{{Seq: 1, Members: []int{0, 1, 2}, At: lt(0)}}},
		{ID: 1, Views: []LiveView{{Seq: 2, Members: []int{0, 1}, At: lt(5)}}},
	}
	r := &Result{}
	LiveMajorityGroups(5, hs, r)
	if r.OK() {
		t.Fatalf("sub-majority view (2 of 5) not flagged")
	}
	r = &Result{}
	LiveMajorityGroups(3, hs, r)
	if !r.OK() {
		t.Fatalf("majority views flagged: %s", r)
	}
}

func TestLiveAtMostOneDecider(t *testing.T) {
	// Sequential tenures: fine.
	hs := []LiveHistory{
		{ID: 0, Tenures: []LiveTenure{{Start: lt(0), End: lt(100), Sent: true}}},
		{ID: 1, Tenures: []LiveTenure{{Start: lt(100), End: lt(200), Sent: true}}},
	}
	r := &Result{}
	LiveAtMostOneDecider(hs, 10*time.Millisecond, r)
	if !r.OK() {
		t.Fatalf("sequential tenures flagged: %s", r)
	}

	// Overlap beyond the skew bound: violation.
	bad := []LiveHistory{
		{ID: 0, Tenures: []LiveTenure{{Start: lt(0), End: lt(150), Sent: true}}},
		{ID: 1, Tenures: []LiveTenure{{Start: lt(100), End: lt(200), Sent: true}}},
	}
	r = &Result{}
	LiveAtMostOneDecider(bad, 10*time.Millisecond, r)
	if r.OK() {
		t.Fatalf("50ms overlap with 10ms skew not flagged")
	}

	// The same overlap within the skew bound is not provable from
	// timestamps taken on different clocks.
	r = &Result{}
	LiveAtMostOneDecider(bad, 60*time.Millisecond, r)
	if !r.OK() {
		t.Fatalf("sub-skew overlap flagged: %s", r)
	}

	// A closed tenure that never sent a decision is benign.
	benign := []LiveHistory{
		{ID: 0, Tenures: []LiveTenure{{Start: lt(0), End: lt(150), Sent: false}}},
		{ID: 1, Tenures: []LiveTenure{{Start: lt(100), End: lt(200), Sent: true}}},
	}
	r = &Result{}
	LiveAtMostOneDecider(benign, 10*time.Millisecond, r)
	if !r.OK() {
		t.Fatalf("non-sending tenure flagged: %s", r)
	}

	// An open tenure counts even without a decision yet.
	open := []LiveHistory{
		{ID: 0, Tenures: []LiveTenure{{Start: lt(0), End: lt(150), Sent: false, Open: true}}},
		{ID: 1, Tenures: []LiveTenure{{Start: lt(100), End: lt(200), Sent: true}}},
	}
	r = &Result{}
	LiveAtMostOneDecider(open, 10*time.Millisecond, r)
	if r.OK() {
		t.Fatalf("open-tenure overlap not flagged")
	}

	// Same node re-elected: no self-overlap violation.
	same := []LiveHistory{
		{ID: 0, Tenures: []LiveTenure{
			{Start: lt(0), End: lt(150), Sent: true},
			{Start: lt(100), End: lt(200), Sent: true},
		}},
	}
	r = &Result{}
	LiveAtMostOneDecider(same, 0, r)
	if !r.OK() {
		t.Fatalf("same-node overlap flagged: %s", r)
	}
}

func TestLiveAll(t *testing.T) {
	hs := []LiveHistory{
		{ID: 0,
			Views:   []LiveView{{Seq: 1, Members: []int{0, 1, 2}, At: lt(0)}},
			Tenures: []LiveTenure{{Start: lt(0), End: lt(100), Sent: true}}},
		{ID: 1, Views: []LiveView{{Seq: 1, Members: []int{0, 1, 2}, At: lt(1)}}},
		{ID: 2, Views: []LiveView{{Seq: 1, Members: []int{0, 1, 2}, At: lt(2)}}},
	}
	if r := LiveAll(3, hs, 5*time.Millisecond); !r.OK() {
		t.Fatalf("clean live run flagged: %s", r)
	}
}
