package check

import (
	"strings"
	"testing"

	"timewheel/internal/broadcast"
	"timewheel/internal/model"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

// testCluster builds an idle 3-node cluster whose histories the tests
// populate by hand.
func testCluster() *node.Cluster {
	return node.NewCluster(node.Options{
		Seed:          1,
		Params:        model.DefaultParams(3),
		PerfectClocks: true,
	})
}

func hasViolation(r *Result, invariant string) bool {
	for _, v := range r.Violations {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

func TestCleanClusterPasses(t *testing.T) {
	c := testCluster()
	r := All(c)
	if !r.OK() {
		t.Fatalf("idle cluster violates: %s", r)
	}
	if r.String() != "all invariants hold" {
		t.Fatalf("String: %q", r.String())
	}
}

func TestViewAgreementDetectsCompletedDivergence(t *testing.T) {
	// Two COMPLETED groups (installed by all their members) with the
	// same sequence but different member sets: a real agreement
	// violation.
	c := testCluster()
	gA := model.NewGroup(1, []model.ProcessID{0, 1})
	gB := model.NewGroup(1, []model.ProcessID{1, 2})
	c.Node(0).Views = append(c.Node(0).Views, node.ViewRecord{Group: gA})
	c.Node(1).Views = append(c.Node(1).Views, node.ViewRecord{Group: gA}, node.ViewRecord{Group: gB})
	c.Node(2).Views = append(c.Node(2).Views, node.ViewRecord{Group: gB})
	r := &Result{}
	ViewAgreement(c, r)
	if !hasViolation(r, "view-agreement") {
		t.Fatalf("completed divergent groups not detected: %s", r)
	}
	if !strings.Contains(r.String(), "view-agreement") {
		t.Fatalf("String: %q", r.String())
	}
}

func TestViewAgreementIgnoresUncompletedForks(t *testing.T) {
	// A fork that never completed (not all members installed it) is the
	// paper's allowed "limited divergence".
	c := testCluster()
	gA := model.NewGroup(1, []model.ProcessID{0, 1})
	gFork := model.NewGroup(1, []model.ProcessID{0, 1, 2})
	c.Node(0).Views = append(c.Node(0).Views, node.ViewRecord{Group: gA})
	c.Node(1).Views = append(c.Node(1).Views, node.ViewRecord{Group: gA})
	c.Node(2).Views = append(c.Node(2).Views, node.ViewRecord{Group: gFork}) // only p2 installed it
	r := &Result{}
	ViewAgreement(c, r)
	if !r.OK() {
		t.Fatalf("uncompleted fork flagged: %s", r)
	}
}

func TestViewAgreementAcceptsIdenticalViews(t *testing.T) {
	c := testCluster()
	g := model.NewGroup(1, []model.ProcessID{0, 1, 2})
	c.Node(0).Views = append(c.Node(0).Views, node.ViewRecord{Group: g})
	c.Node(1).Views = append(c.Node(1).Views, node.ViewRecord{Group: g})
	r := &Result{}
	ViewAgreement(c, r)
	if !r.OK() {
		t.Fatalf("identical views flagged: %s", r)
	}
}

func TestMajorityDetectsSubMajorityView(t *testing.T) {
	c := testCluster()
	c.Node(0).Views = append(c.Node(0).Views, node.ViewRecord{Group: model.NewGroup(1, []model.ProcessID{0})})
	r := &Result{}
	MajorityGroups(c, r)
	if !hasViolation(r, "majority") {
		t.Fatalf("sub-majority view not detected")
	}
}

func TestOneDeciderDetectsOverlap(t *testing.T) {
	c := testCluster()
	c.Node(0).DeciderLog = append(c.Node(0).DeciderLog, node.DeciderRecord{Start: 100, End: 200, Sent: true})
	c.Node(1).DeciderLog = append(c.Node(1).DeciderLog, node.DeciderRecord{Start: 150, End: 250, Sent: true})
	r := &Result{}
	AtMostOneDecider(c, r)
	if !hasViolation(r, "one-decider") {
		t.Fatalf("overlapping deciders not detected")
	}
}

func TestOneDeciderIgnoresSilentTenures(t *testing.T) {
	c := testCluster()
	c.Node(0).DeciderLog = append(c.Node(0).DeciderLog, node.DeciderRecord{Start: 100, End: 200, Sent: true})
	c.Node(1).DeciderLog = append(c.Node(1).DeciderLog, node.DeciderRecord{Start: 150, End: 250, Sent: false})
	r := &Result{}
	AtMostOneDecider(c, r)
	if !r.OK() {
		t.Fatalf("silent tenure flagged: %s", r)
	}
}

func TestOneDeciderTreatsOpenTenureAsLive(t *testing.T) {
	c := testCluster()
	c.Sim.RunFor(1000)
	c.Node(0).DeciderLog = append(c.Node(0).DeciderLog, node.DeciderRecord{Start: 100}) // open
	c.Node(1).DeciderLog = append(c.Node(1).DeciderLog, node.DeciderRecord{Start: 150, End: 900, Sent: true})
	r := &Result{}
	AtMostOneDecider(c, r)
	if !hasViolation(r, "one-decider") {
		t.Fatalf("open tenure overlap not detected")
	}
}

func deliver(n *node.Node, proposer model.ProcessID, seq uint64, order oal.Order, atom oal.Atomicity, ts model.Time) {
	n.Deliveries = append(n.Deliveries, node.DeliveryRecord{
		Delivery: broadcast.Delivery{
			ID:     oal.ProposalID{Proposer: proposer, Seq: seq},
			Sem:    oal.Semantics{Order: order, Atomicity: atom},
			SendTS: ts,
		},
	})
}

func TestTotalOrderDetectsDivergence(t *testing.T) {
	c := testCluster()
	deliver(c.Node(0), 1, 1, oal.TotalOrder, oal.WeakAtomicity, 10)
	deliver(c.Node(0), 2, 1, oal.TotalOrder, oal.WeakAtomicity, 20)
	deliver(c.Node(1), 2, 1, oal.TotalOrder, oal.WeakAtomicity, 20)
	deliver(c.Node(1), 1, 1, oal.TotalOrder, oal.WeakAtomicity, 10)
	r := &Result{}
	TotalOrderAgreement(c, r)
	if !hasViolation(r, "total-order") {
		t.Fatalf("total order divergence not detected")
	}
}

func TestTotalOrderAcceptsPrefixes(t *testing.T) {
	c := testCluster()
	deliver(c.Node(0), 1, 1, oal.TotalOrder, oal.WeakAtomicity, 10)
	deliver(c.Node(0), 2, 1, oal.TotalOrder, oal.WeakAtomicity, 20)
	deliver(c.Node(1), 1, 1, oal.TotalOrder, oal.WeakAtomicity, 10) // lagging
	r := &Result{}
	TotalOrderAgreement(c, r)
	if !r.OK() {
		t.Fatalf("prefix flagged: %s", r)
	}
}

func TestTimeOrderDetectsInversion(t *testing.T) {
	c := testCluster()
	deliver(c.Node(0), 1, 1, oal.TimeOrder, oal.WeakAtomicity, 100)
	deliver(c.Node(0), 2, 1, oal.TimeOrder, oal.WeakAtomicity, 50)
	r := &Result{}
	TimeOrderPerNode(c, r)
	if !hasViolation(r, "time-order") {
		t.Fatalf("timestamp inversion not detected")
	}
}

func TestFIFODetectsSeqInversion(t *testing.T) {
	c := testCluster()
	deliver(c.Node(0), 1, 2, oal.TotalOrder, oal.WeakAtomicity, 20)
	deliver(c.Node(0), 1, 1, oal.TotalOrder, oal.WeakAtomicity, 10)
	r := &Result{}
	FIFOOrderedPerSender(c, r)
	if !hasViolation(r, "fifo") {
		t.Fatalf("FIFO inversion not detected")
	}
}

func TestFIFOIgnoresUnordered(t *testing.T) {
	c := testCluster()
	deliver(c.Node(0), 1, 2, oal.Unordered, oal.WeakAtomicity, 20)
	deliver(c.Node(0), 1, 1, oal.Unordered, oal.WeakAtomicity, 10)
	r := &Result{}
	FIFOOrderedPerSender(c, r)
	if !r.OK() {
		t.Fatalf("unordered gap flagged: %s", r)
	}
}

func TestNoDupDetectsDoubleDelivery(t *testing.T) {
	c := testCluster()
	deliver(c.Node(0), 1, 1, oal.Unordered, oal.WeakAtomicity, 10)
	deliver(c.Node(0), 1, 1, oal.Unordered, oal.WeakAtomicity, 10)
	r := &Result{}
	NoDuplicateDeliveries(c, r)
	if !hasViolation(r, "no-dup") {
		t.Fatalf("double delivery not detected")
	}
}
