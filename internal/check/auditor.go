package check

// Auditor is the live counterpart of the sim validators: a streaming,
// bounded-memory checker that a running node feeds from its delivery
// and view-install paths. It verifies the node-local projections of the
// §3 invariants — FIFO order per proposer, no duplicate deliveries,
// total-order and time-order monotonicity, view-sequence monotonicity,
// and majority-sized groups — and counts violations instead of
// collecting them, so the node can export a counter and trip the flight
// recorder without unbounded state.
//
// The monotone checks (order, FIFO, views) are a handful of compares
// and run on every observation. Only the unordered-duplicate check
// needs a lookback set; it is bounded to a recent window and can be
// sampled down via Config.Sample on hot nodes.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// Invariant names reported by the Auditor. They double as the label
// values of the timewheel_invariant_violations_total metric.
const (
	InvFIFOOrder     = "fifo_order"
	InvDuplicate     = "duplicate_delivery"
	InvTotalOrder    = "total_order"
	InvTimeOrder     = "time_order"
	InvViewMonotonic = "view_monotonic"
	InvMajorityView  = "majority_view"
)

// AuditorConfig parameterizes a live Auditor.
type AuditorConfig struct {
	// N is the static team size, used for the majority-view check.
	// Zero disables that check.
	N int
	// Sample runs the unordered-duplicate window check on one in Sample
	// deliveries; values <= 1 check every delivery. The monotone checks
	// are always on — they are cheaper than the sampling counter.
	Sample int
	// Window bounds the duplicate-detection lookback (delivered proposal
	// IDs remembered). Zero means 4096.
	Window int
	// OnViolation, when set, fires synchronously on the observing
	// goroutine for every violation. Keep it cheap; the node uses it to
	// trip the flight recorder.
	OnViolation func(invariant, detail string)
}

// Auditor is safe for concurrent use; all observation methods are
// O(1) amortized and allocation-free outside the violation path.
type Auditor struct {
	cfg        AuditorConfig
	violations atomic.Uint64

	mu      sync.Mutex
	byInv   map[string]uint64
	lastSeq map[model.ProcessID]uint64 // ordered deliveries: strict FIFO floor
	lastOrd oal.Ordinal                // total-order deliveries: last ordinal
	lastTS  model.Time                 // time-order deliveries: last send TS
	lastPr  model.ProcessID            // ... with proposer as the tiebreak
	anyTime bool
	window  []oal.ProposalID // ring of recent IDs for the unordered-dup check
	seen    map[oal.ProposalID]struct{}
	wpos    int
	tick    int
	viewSeq uint64
	anyView bool
}

// NewAuditor builds a live invariant auditor.
func NewAuditor(cfg AuditorConfig) *Auditor {
	if cfg.Window <= 0 {
		cfg.Window = 4096
	}
	return &Auditor{
		cfg:     cfg,
		byInv:   make(map[string]uint64),
		lastSeq: make(map[model.ProcessID]uint64),
		window:  make([]oal.ProposalID, 0, cfg.Window),
		seen:    make(map[oal.ProposalID]struct{}, cfg.Window),
	}
}

// ResetIncarnation clears the delivery- and view-ordering floors while
// keeping the cumulative violation counters. Call it when the process
// drops back to the join state: an excluded (or self-excluded) member
// restarts its delivery stream through the join-time state transfer,
// legitimately re-observing history it already delivered — the §3
// per-node ordering guarantees are per membership incarnation, and
// holding the old floors across the reset would report that replay as
// FIFO/total-order violations. Cross-incarnation delivery continuity
// is the application's Snapshot/Install contract, checked end-to-end
// by check.LiveAll over the full histories instead.
func (a *Auditor) ResetIncarnation() {
	a.mu.Lock()
	defer a.mu.Unlock()
	clear(a.lastSeq)
	a.lastOrd = oal.None
	a.lastTS, a.lastPr, a.anyTime = 0, 0, false
	a.window = a.window[:0]
	clear(a.seen)
	a.wpos, a.tick = 0, 0
	a.viewSeq, a.anyView = 0, false
}

// Violations returns the total violation count. Safe without the lock;
// exported as timewheel_invariant_violations_total.
func (a *Auditor) Violations() uint64 { return a.violations.Load() }

// ByInvariant returns a snapshot of per-invariant violation counts.
func (a *Auditor) ByInvariant() map[string]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]uint64, len(a.byInv))
	for k, v := range a.byInv {
		out[k] = v
	}
	return out
}

func (a *Auditor) violate(inv, detail string) {
	a.violations.Add(1)
	a.byInv[inv]++
	if a.cfg.OnViolation != nil {
		a.cfg.OnViolation(inv, detail)
	}
}

// ObserveDeliver checks one delivered update. Call it from the
// OnDeliver path with the delivery's identity, ordinal, semantics and
// send timestamp.
func (a *Auditor) ObserveDeliver(id oal.ProposalID, ord oal.Ordinal, sem oal.Semantics, sendTS model.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()

	if sem.Order != oal.Unordered {
		// FIFO per proposer: ordered deliveries from one proposer must
		// arrive in strictly increasing sequence. A repeat is a
		// duplicate; a smaller sequence is a reordering.
		if last, ok := a.lastSeq[id.Proposer]; ok && id.Seq <= last {
			if id.Seq == last {
				a.violate(InvDuplicate, fmt.Sprintf("update %v delivered twice", id))
			} else {
				a.violate(InvFIFOOrder, fmt.Sprintf("update %v delivered after seq %d", id, last))
			}
		} else {
			a.lastSeq[id.Proposer] = id.Seq
		}
	} else if a.cfg.Sample <= 1 || a.tickSample() {
		// Unordered deliveries have no sequence floor to lean on; catch
		// duplicates against a bounded recent window.
		if _, dup := a.seen[id]; dup {
			a.violate(InvDuplicate, fmt.Sprintf("unordered update %v delivered twice", id))
		} else {
			a.remember(id)
		}
	}

	if ord != oal.None && sem.Order == oal.TotalOrder {
		if a.lastOrd != oal.None && ord <= a.lastOrd {
			a.violate(InvTotalOrder, fmt.Sprintf("ordinal %d delivered after %d", ord, a.lastOrd))
		}
		if ord > a.lastOrd {
			a.lastOrd = ord
		}
	}

	if sem.Order == oal.TimeOrder {
		// Time-order deliveries must be sorted by (send TS, proposer).
		if a.anyTime && (sendTS < a.lastTS || (sendTS == a.lastTS && id.Proposer < a.lastPr)) {
			a.violate(InvTimeOrder, fmt.Sprintf("update %v ts=%d delivered after ts=%d/p%v",
				id, sendTS, a.lastTS, a.lastPr))
		}
		if !a.anyTime || sendTS > a.lastTS || (sendTS == a.lastTS && id.Proposer > a.lastPr) {
			a.lastTS, a.lastPr = sendTS, id.Proposer
		}
		a.anyTime = true
	}
}

// ObserveView checks one installed membership view: sequence numbers
// must be strictly monotone and, when the team size is known, every
// installed group must hold a majority (§3: at most one majority group
// exists; a node in a minority group must not install it).
func (a *Auditor) ObserveView(seq uint64, members int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.anyView && seq <= a.viewSeq {
		a.violate(InvViewMonotonic, fmt.Sprintf("view g%d installed after g%d", seq, a.viewSeq))
	}
	if seq > a.viewSeq {
		a.viewSeq = seq
	}
	a.anyView = true
	if a.cfg.N > 0 && members <= a.cfg.N/2 {
		a.violate(InvMajorityView, fmt.Sprintf("view g%d has %d members, majority of %d is %d",
			seq, members, a.cfg.N, a.cfg.N/2+1))
	}
}

// tickSample implements 1-in-Sample gating; callers hold the lock.
func (a *Auditor) tickSample() bool {
	a.tick++
	if a.tick >= a.cfg.Sample {
		a.tick = 0
		return true
	}
	return false
}

// remember adds an ID to the bounded duplicate-detection window,
// evicting the oldest once full; callers hold the lock.
func (a *Auditor) remember(id oal.ProposalID) {
	if len(a.window) < cap(a.window) {
		a.window = append(a.window, id)
	} else {
		delete(a.seen, a.window[a.wpos])
		a.window[a.wpos] = id
		a.wpos = (a.wpos + 1) % len(a.window)
	}
	a.seen[id] = struct{}{}
}
