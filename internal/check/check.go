// Package check validates the membership and broadcast invariants of a
// completed simulation run against the paper's specification (§3, §4.3):
// view agreement, majority groups, at most one decider, ordering and
// atomicity of deliveries, and purge safety. Tests and the benchmark
// harness run these validators over every scenario they execute.
package check

import (
	"fmt"

	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

// Violation describes one invariant breach.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Result aggregates violations from all checks.
type Result struct {
	Violations []Violation
}

// OK reports whether no invariant was violated.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

func (r *Result) add(inv, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

func (r *Result) String() string {
	if r.OK() {
		return "all invariants hold"
	}
	s := fmt.Sprintf("%d violations:", len(r.Violations))
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	return s
}

// All runs every validator over the cluster's recorded history.
func All(c *node.Cluster) *Result {
	r := &Result{}
	ViewAgreement(c, r)
	MajorityGroups(c, r)
	AtMostOneDecider(c, r)
	TotalOrderAgreement(c, r)
	TimeOrderPerNode(c, r)
	FIFOOrderedPerSender(c, r)
	NoDuplicateDeliveries(c, r)
	PurgeSafety(c, r)
	StrictAtomicityConvergence(c, r)
	return r
}

// ViewAgreement: the paper's majority-agreement property (§3) covers
// *completed* majority groups — groups joined (installed) by every one
// of their members. Two completed groups with the same sequence number
// must have identical member sets. Uncompleted groups — forks that died
// before all members installed them, e.g. an admission decision racing
// a concurrent election — are the paper's explicitly allowed "limited
// divergences": their members are excluded and rejoin, and the
// state-level checkers (order agreement, purge safety, no-dup) guard
// what they were allowed to observe meanwhile.
func ViewAgreement(c *node.Cluster, r *Result) {
	type groupKey struct {
		seq     model.GroupSeq
		members string
	}
	installs := make(map[groupKey]model.ProcessSet)
	groups := make(map[groupKey]model.Group)
	for _, n := range c.Nodes {
		for _, v := range n.Views {
			k := groupKey{v.Group.Seq, fmt.Sprint(v.Group.Members)}
			if installs[k] == nil {
				installs[k] = model.NewProcessSet()
				groups[k] = v.Group
			}
			installs[k].Add(n.ID)
		}
	}
	completed := make(map[model.GroupSeq]model.Group)
	for k, who := range installs {
		g := groups[k]
		all := true
		for _, m := range g.Members {
			if !who.Has(m) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		if prev, ok := completed[g.Seq]; ok && !prev.SameMembers(g) {
			r.add("view-agreement", "seq %d: completed groups %v and %v coexist",
				g.Seq, prev, g)
		} else {
			completed[g.Seq] = g
		}
	}
}

// MajorityGroups: every installed view contains at least a majority of
// the team (paper property 5).
func MajorityGroups(c *node.Cluster, r *Result) {
	maj := c.Params.Majority()
	for _, n := range c.Nodes {
		for _, v := range n.Views {
			if v.Group.Size() < maj {
				r.add("majority", "p%d installed sub-majority view %v", n.ID, v.Group)
			}
		}
	}
}

// AtMostOneDecider: no two decision-producing decider tenures overlap in
// time (the central safety argument of the election interlock). Tenures
// that end without sending a decision — a decider-elect relinquishing on
// a fresher decision that was already in flight — are benign and
// excluded.
func AtMostOneDecider(c *node.Cluster, r *Result) {
	type interval struct {
		who        model.ProcessID
		start, end model.Time
	}
	var all []interval
	for _, n := range c.Nodes {
		for _, d := range n.DeciderLog {
			end := d.End
			if end == 0 {
				end = c.Sim.Now()
			} else if !d.Sent {
				continue
			}
			all = append(all, interval{n.ID, d.Start, end})
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if a.who == b.who {
				continue
			}
			if a.start < b.end && b.start < a.end {
				r.add("one-decider", "p%d [%v,%v) overlaps p%d [%v,%v)",
					a.who, a.start, a.end, b.who, b.start, b.end)
			}
		}
	}
}

// orderedDeliveries returns a node's current-incarnation deliveries with
// the given ordering semantic.
func orderedDeliveries(n *node.Node, order oal.Order) []node.DeliveryRecord {
	var out []node.DeliveryRecord
	for _, d := range n.Deliveries {
		if d.Incarnation == n.Incarnation && d.Sem.Order == order {
			out = append(out, d)
		}
	}
	return out
}

// TotalOrderAgreement: the sequences of totally ordered updates
// delivered by any two processes are prefix-compatible after aligning on
// common updates (excluded processes may lag, never diverge).
func TotalOrderAgreement(c *node.Cluster, r *Result) {
	var seqs [][]node.DeliveryRecord
	var who []model.ProcessID
	for _, n := range c.Nodes {
		seqs = append(seqs, orderedDeliveries(n, oal.TotalOrder))
		who = append(who, n.ID)
	}
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			a, b := seqs[i], seqs[j]
			// Compare the common subsequence: both must list shared
			// updates in the same relative order.
			inB := make(map[oal.ProposalID]int)
			for k, d := range b {
				inB[d.ID] = k
			}
			last := -1
			for _, d := range a {
				k, ok := inB[d.ID]
				if !ok {
					continue
				}
				if k < last {
					r.add("total-order", "p%v and p%v disagree on relative order of %v",
						who[i], who[j], d.ID)
					break
				}
				last = k
			}
		}
	}
}

// TimeOrderPerNode: every node's time-ordered deliveries are sorted by
// send timestamp (ties by proposer, then sequence).
func TimeOrderPerNode(c *node.Cluster, r *Result) {
	for _, n := range c.Nodes {
		ds := orderedDeliveries(n, oal.TimeOrder)
		for i := 1; i < len(ds); i++ {
			a, b := ds[i-1], ds[i]
			if b.SendTS < a.SendTS ||
				(b.SendTS == a.SendTS && b.ID.Proposer < a.ID.Proposer) {
				r.add("time-order", "p%d delivered %v(ts=%v) after %v(ts=%v)",
					n.ID, b.ID, b.SendTS, a.ID, a.SendTS)
			}
		}
	}
}

// FIFOOrderedPerSender: among total- and time-ordered updates, each
// node delivers any one proposer's updates in increasing sequence order
// (the FIFO property §4.3 relies on).
func FIFOOrderedPerSender(c *node.Cluster, r *Result) {
	for _, n := range c.Nodes {
		lastSeq := make(map[model.ProcessID]uint64)
		for _, d := range n.Deliveries {
			if d.Incarnation != n.Incarnation || d.Sem.Order == oal.Unordered {
				continue
			}
			if prev, ok := lastSeq[d.ID.Proposer]; ok && d.ID.Seq < prev {
				r.add("fifo", "p%d delivered %v after seq %d of same proposer",
					n.ID, d.ID, prev)
			}
			lastSeq[d.ID.Proposer] = d.ID.Seq
		}
	}
}

// NoDuplicateDeliveries: a node never delivers the same update twice in
// one incarnation.
func NoDuplicateDeliveries(c *node.Cluster, r *Result) {
	for _, n := range c.Nodes {
		seen := make(map[oal.ProposalID]bool)
		for _, d := range n.Deliveries {
			if d.Incarnation != n.Incarnation {
				continue
			}
			if seen[d.ID] {
				r.add("no-dup", "p%d delivered %v twice", n.ID, d.ID)
			}
			seen[d.ID] = true
		}
	}
}

// PurgeSafety: no member of the current group delivered an update whose
// descriptor is marked undeliverable in any current member's view
// (§4.3: "no current group member deliver an update whose proposal
// descriptor is removed from oal").
func PurgeSafety(c *node.Cluster, r *Result) {
	purged := make(map[oal.ProposalID]bool)
	for _, n := range c.Nodes {
		if c.Crashed(n.ID) {
			continue
		}
		if _, ok := n.CurrentGroup(); !ok {
			continue
		}
		for _, id := range n.Broadcast().UndeliverableIDs() {
			purged[id] = true
		}
	}
	for _, n := range c.Nodes {
		if c.Crashed(n.ID) {
			continue
		}
		g, ok := n.CurrentGroup()
		if !ok || !g.Contains(n.ID) {
			continue
		}
		for _, d := range n.Deliveries {
			if d.Incarnation == n.Incarnation && purged[d.ID] {
				r.add("purge-safety", "current member p%d delivered purged update %v", n.ID, d.ID)
			}
		}
	}
}

// StrictAtomicityConvergence: at the end of a quiescent run, an update
// with strict atomicity delivered by one final-group member has been
// delivered by every final-group member that was continuously present.
// Members that crashed/recovered or were excluded and rejoined receive
// the missed history through the join-time state transfer (their app
// snapshot already reflects it), so no delivery record exists for them —
// the §3 "limited divergences" the paper allows.
func StrictAtomicityConvergence(c *node.Cluster, r *Result) {
	// Identify the final group: the highest-seq view installed by any
	// live node whose members agree on it.
	var final model.Group
	for _, n := range c.Nodes {
		if c.Crashed(n.ID) {
			continue
		}
		g, ok := n.CurrentGroup()
		if ok && g.Seq > final.Seq {
			final = g
		}
	}
	if final.Size() == 0 {
		return
	}
	// Continuous members: never crashed/recovered, never fell back to
	// the join state after their first group.
	var continuous []model.ProcessID
	for _, id := range final.Members {
		n := c.Node(id)
		if c.Crashed(id) {
			return // a crashed final member: convergence not assessable
		}
		if n.Incarnation != 0 {
			continue
		}
		rejoined := false
		for _, s := range n.StateLog {
			if s.To == member.StateJoin {
				rejoined = true
				break
			}
		}
		if !rejoined {
			continuous = append(continuous, id)
		}
	}
	delivered := make(map[oal.ProposalID]map[model.ProcessID]bool)
	for _, id := range continuous {
		n := c.Node(id)
		for _, d := range n.Deliveries {
			if d.Sem.Atomicity != oal.StrictAtomicity {
				continue
			}
			if delivered[d.ID] == nil {
				delivered[d.ID] = make(map[model.ProcessID]bool)
			}
			delivered[d.ID][id] = true
		}
	}
	for id, whos := range delivered {
		if len(whos) != len(continuous) {
			r.add("strict-atomicity", "update %v delivered by %d of %d continuous final members",
				id, len(whos), len(continuous))
		}
	}
}
