// Live-cluster invariant checking: the same §3 membership properties the
// simulator validators enforce (view agreement, majority groups, at most
// one decider), adapted to histories recorded from *real running nodes*.
// Live nodes differ from simulated ones in two ways that matter here:
// events are stamped with per-node wall clocks (so interval comparisons
// must tolerate a skew bound rather than demand a shared virtual clock),
// and the run is observed while still in motion (so decider tenures may
// be open). The history types are plain data — the timewheel node layer
// produces them — keeping this package free of a dependency on the live
// node implementation.
package check

import (
	"fmt"
	"time"
)

// LiveView is one view installation recorded by a live node.
type LiveView struct {
	Seq     uint64
	Members []int
	At      time.Time
}

// LiveTenure is one decider tenure recorded by a live node.
type LiveTenure struct {
	Start time.Time
	// End is the tenure's end, or the collection time for a tenure
	// still open when the history was snapshotted (Open true).
	End  time.Time
	Sent bool // the tenure produced at least one decision
	Open bool
}

// LiveHistory is everything one live node contributes to the checks.
type LiveHistory struct {
	ID      int
	Views   []LiveView
	Tenures []LiveTenure
}

// LiveAll runs the three adapted membership validators over live
// histories from a team of clusterSize processes. skew bounds the
// worst-case disagreement between any two nodes' wall clocks (the live
// analogue of the model's epsilon); interval overlaps shorter than skew
// are not provable from timestamps taken on different clocks.
func LiveAll(clusterSize int, hs []LiveHistory, skew time.Duration) *Result {
	r := &Result{}
	LiveViewAgreement(hs, r)
	LiveMajorityGroups(clusterSize, hs, r)
	LiveAtMostOneDecider(hs, skew, r)
	return r
}

// LiveViewAgreement mirrors ViewAgreement: two *completed* groups (every
// listed member recorded the installation) with the same sequence number
// must have identical member sets.
func LiveViewAgreement(hs []LiveHistory, r *Result) {
	type groupKey struct {
		seq     uint64
		members string
	}
	installs := make(map[groupKey]map[int]bool)
	members := make(map[groupKey][]int)
	for _, h := range hs {
		for _, v := range h.Views {
			k := groupKey{v.Seq, fmt.Sprint(v.Members)}
			if installs[k] == nil {
				installs[k] = make(map[int]bool)
				members[k] = v.Members
			}
			installs[k][h.ID] = true
		}
	}
	completed := make(map[uint64]string)
	for k, who := range installs {
		all := true
		for _, m := range members[k] {
			if !who[m] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		if prev, ok := completed[k.seq]; ok && prev != k.members {
			r.add("view-agreement", "seq %d: completed groups %s and %s coexist",
				k.seq, prev, k.members)
		} else {
			completed[k.seq] = k.members
		}
	}
}

// LiveMajorityGroups mirrors MajorityGroups: every installed view holds
// at least a majority of the team.
func LiveMajorityGroups(clusterSize int, hs []LiveHistory, r *Result) {
	maj := clusterSize/2 + 1
	for _, h := range hs {
		for _, v := range h.Views {
			if len(v.Members) < maj {
				r.add("majority", "p%d installed sub-majority view g%d %v", h.ID, v.Seq, v.Members)
			}
		}
	}
}

// LiveAtMostOneDecider mirrors AtMostOneDecider: no two decision-
// producing tenures on different nodes overlap — here, by more than
// skew, since each tenure is stamped on its own node's clock. Closed
// tenures that never sent a decision (a decider-elect relinquishing) are
// benign and excluded; open tenures are included, decision or not, since
// a live decider's next decision may be imminent.
func LiveAtMostOneDecider(hs []LiveHistory, skew time.Duration, r *Result) {
	type interval struct {
		who        int
		start, end time.Time
	}
	var all []interval
	for _, h := range hs {
		for _, t := range h.Tenures {
			if !t.Open && !t.Sent {
				continue
			}
			all = append(all, interval{h.ID, t.Start, t.End})
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if a.who == b.who {
				continue
			}
			ovStart, ovEnd := a.start, a.end
			if b.start.After(ovStart) {
				ovStart = b.start
			}
			if b.end.Before(ovEnd) {
				ovEnd = b.end
			}
			if ovEnd.Sub(ovStart) > skew {
				r.add("one-decider", "p%d [%v,%v) overlaps p%d [%v,%v) by %v (> skew %v)",
					a.who, a.start.Format("15:04:05.000"), a.end.Format("15:04:05.000"),
					b.who, b.start.Format("15:04:05.000"), b.end.Format("15:04:05.000"),
					ovEnd.Sub(ovStart), skew)
			}
		}
	}
}
