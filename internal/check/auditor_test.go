package check

import (
	"strings"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

func totalOrder() oal.Semantics {
	return oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrictAtomicity}
}

func TestAuditorCleanStream(t *testing.T) {
	a := NewAuditor(AuditorConfig{N: 4})
	for seq := uint64(1); seq <= 10; seq++ {
		a.ObserveDeliver(oal.ProposalID{Proposer: 1, Seq: seq}, oal.Ordinal(seq), totalOrder(), model.Time(seq*100))
	}
	a.ObserveView(1, 4)
	a.ObserveView(2, 3)
	if got := a.Violations(); got != 0 {
		t.Fatalf("clean stream: %d violations (%v)", got, a.ByInvariant())
	}
}

func TestAuditorFIFOAndDuplicate(t *testing.T) {
	var fired []string
	a := NewAuditor(AuditorConfig{OnViolation: func(inv, detail string) {
		fired = append(fired, inv+": "+detail)
	}})
	id := func(seq uint64) oal.ProposalID { return oal.ProposalID{Proposer: 2, Seq: seq} }
	a.ObserveDeliver(id(1), 1, totalOrder(), 100)
	a.ObserveDeliver(id(3), 2, totalOrder(), 300)
	a.ObserveDeliver(id(3), 3, totalOrder(), 300) // duplicate
	a.ObserveDeliver(id(2), 4, totalOrder(), 200) // FIFO regression
	if got := a.ByInvariant(); got[InvDuplicate] != 1 || got[InvFIFOOrder] != 1 {
		t.Fatalf("byInvariant = %v, want one duplicate and one fifo violation", got)
	}
	if len(fired) != 2 || !strings.Contains(fired[0], "delivered twice") {
		t.Fatalf("OnViolation callbacks = %v", fired)
	}
}

func TestAuditorTotalAndTimeOrder(t *testing.T) {
	a := NewAuditor(AuditorConfig{})
	a.ObserveDeliver(oal.ProposalID{Proposer: 1, Seq: 1}, 5, totalOrder(), 500)
	a.ObserveDeliver(oal.ProposalID{Proposer: 2, Seq: 1}, 4, totalOrder(), 400)
	got := a.ByInvariant()
	if got[InvTotalOrder] != 1 {
		t.Fatalf("total-order regression not flagged: %v", got)
	}
	if got[InvTimeOrder] != 0 {
		t.Fatalf("total-order stream should not hit the time-order check: %v", got)
	}

	to := oal.Semantics{Order: oal.TimeOrder}
	a = NewAuditor(AuditorConfig{})
	a.ObserveDeliver(oal.ProposalID{Proposer: 1, Seq: 1}, oal.None, to, 500)
	a.ObserveDeliver(oal.ProposalID{Proposer: 2, Seq: 1}, oal.None, to, 500) // tie, higher proposer: fine
	a.ObserveDeliver(oal.ProposalID{Proposer: 1, Seq: 2}, oal.None, to, 500) // tie, lower proposer: violation
	a.ObserveDeliver(oal.ProposalID{Proposer: 3, Seq: 1}, oal.None, to, 400) // earlier TS: violation
	if got := a.ByInvariant(); got[InvTimeOrder] != 2 {
		t.Fatalf("time-order violations = %v, want 2", got)
	}
}

func TestAuditorUnorderedDuplicateWindow(t *testing.T) {
	un := oal.Semantics{Order: oal.Unordered}
	a := NewAuditor(AuditorConfig{Window: 4})
	id := func(seq uint64) oal.ProposalID { return oal.ProposalID{Proposer: 1, Seq: seq} }
	a.ObserveDeliver(id(1), oal.None, un, 100)
	a.ObserveDeliver(id(1), oal.None, un, 100)
	if got := a.ByInvariant(); got[InvDuplicate] != 1 {
		t.Fatalf("unordered duplicate not caught: %v", got)
	}
	// Push the first ID out of the 4-entry window: the repeat is no
	// longer detectable (bounded memory), but must not false-positive.
	for seq := uint64(2); seq <= 6; seq++ {
		a.ObserveDeliver(id(seq), oal.None, un, model.Time(seq*100))
	}
	a.ObserveDeliver(id(1), oal.None, un, 100)
	if got := a.ByInvariant(); got[InvDuplicate] != 1 {
		t.Fatalf("evicted window entry changed the count: %v", got)
	}
}

func TestAuditorSampling(t *testing.T) {
	un := oal.Semantics{Order: oal.Unordered}
	a := NewAuditor(AuditorConfig{Sample: 3, Window: 64})
	// With 1-in-3 sampling only every third unordered delivery enters
	// the window; a duplicate pair that both land on sampled ticks is
	// still caught over a long stream.
	var caught uint64
	for i := 0; i < 300; i++ {
		a.ObserveDeliver(oal.ProposalID{Proposer: 1, Seq: uint64(i % 30)}, oal.None, un, model.Time(i))
		caught = a.ByInvariant()[InvDuplicate]
	}
	if caught == 0 {
		t.Fatal("sampled duplicate check never fired over a repeating stream")
	}
}

func TestAuditorViews(t *testing.T) {
	a := NewAuditor(AuditorConfig{N: 5})
	a.ObserveView(1, 5)
	a.ObserveView(1, 5) // repeat sequence
	a.ObserveView(3, 2) // minority group
	got := a.ByInvariant()
	if got[InvViewMonotonic] != 1 {
		t.Fatalf("view monotonicity: %v", got)
	}
	if got[InvMajorityView] != 1 {
		t.Fatalf("majority view: %v", got)
	}
	if a.Violations() != 2 {
		t.Fatalf("total = %d, want 2", a.Violations())
	}
}
