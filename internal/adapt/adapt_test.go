package adapt

import (
	"sync"
	"testing"
	"time"
)

// A fixed sample sequence must produce identical estimates on every
// run — the estimator has no hidden randomness or time dependence.
func TestSamplerDeterminism(t *testing.T) {
	run := func() (time.Duration, time.Duration, time.Duration) {
		s := NewSampler(Config{Window: 16, Quantile: 0.9, Alpha: 0.25, Margin: 2})
		for i := 0; i < 100; i++ {
			s.Observe(time.Duration(1+i%7) * time.Millisecond)
		}
		b, ok := s.Bound()
		if !ok {
			t.Fatal("Bound not ready after 100 samples")
		}
		return s.EWMA(), s.Quantile(), b
	}
	e1, q1, b1 := run()
	e2, q2, b2 := run()
	if e1 != e2 || q1 != q2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%v,%v,%v) vs (%v,%v,%v)", e1, q1, b1, e2, q2, b2)
	}
	if q1 != 7*time.Millisecond {
		t.Fatalf("q0.9 over window of 1..7ms = %v, want 7ms", q1)
	}
	if b1 != 14*time.Millisecond {
		t.Fatalf("bound = %v, want quantile*margin = 14ms", b1)
	}
}

// The EWMA converges toward a level shift and the windowed quantile
// fully decays to the new regime once the window has turned over.
func TestSamplerConvergenceAndDecay(t *testing.T) {
	s := NewSampler(Config{Window: 32, Quantile: 0.99, Alpha: 0.125, Margin: 1})
	for i := 0; i < 64; i++ {
		s.Observe(10 * time.Millisecond)
	}
	if got := s.EWMA(); got != 10*time.Millisecond {
		t.Fatalf("steady EWMA = %v, want 10ms", got)
	}
	// Level shift down: 10ms -> 1ms.
	for i := 0; i < 64; i++ {
		s.Observe(1 * time.Millisecond)
	}
	ew := s.EWMA()
	if ew > 2*time.Millisecond || ew < 1*time.Millisecond {
		t.Fatalf("EWMA after shift = %v, want ~1ms", ew)
	}
	// Window (32) fully turned over: the old 10ms samples are gone.
	if q := s.Quantile(); q != 1*time.Millisecond {
		t.Fatalf("quantile after decay = %v, want 1ms", q)
	}
}

func TestSamplerNotReadyBeforeMinSamples(t *testing.T) {
	s := NewSampler(Config{MinSamples: 8})
	for i := 0; i < 7; i++ {
		s.Observe(time.Millisecond)
		if _, ok := s.Bound(); ok {
			t.Fatalf("Bound ready at %d samples, MinSamples=8", i+1)
		}
	}
	s.Observe(time.Millisecond)
	if _, ok := s.Bound(); !ok {
		t.Fatal("Bound not ready at MinSamples")
	}
}

func TestSamplerNegativeClamped(t *testing.T) {
	s := NewSampler(Config{})
	s.Observe(-5 * time.Millisecond)
	if got := s.EWMA(); got != 0 {
		t.Fatalf("EWMA of clamped negative sample = %v, want 0", got)
	}
}

// NoiseEstimator budgets clamp to [floor, ceil]: quiet hosts never get
// a hair-trigger budget, stalling hosts never teach themselves an
// unbounded one.
func TestNoiseBudgetClamping(t *testing.T) {
	n := NewNoiseEstimator(Config{MinSamples: 4, Margin: 1}, 10*time.Millisecond, 100*time.Millisecond)
	// Tiny noise: clamped up to the floor.
	for i := 0; i < 8; i++ {
		n.ObserveLateness(100 * time.Microsecond)
		n.ObserveHandler(50 * time.Microsecond)
	}
	h, l := n.Budgets()
	if h != 10*time.Millisecond || l != 10*time.Millisecond {
		t.Fatalf("budgets = (%v,%v), want floor 10ms both", h, l)
	}
	// Huge noise: clamped down to the ceiling.
	for i := 0; i < 200; i++ {
		n.ObserveLateness(5 * time.Second)
		n.ObserveHandler(5 * time.Second)
	}
	h, l = n.Budgets()
	if h != 100*time.Millisecond || l != 100*time.Millisecond {
		t.Fatalf("budgets = (%v,%v), want ceiling 100ms both", h, l)
	}
}

func TestNoiseBudgetsZeroUntilWarm(t *testing.T) {
	n := NewNoiseEstimator(Config{MinSamples: 8}, 0, 0)
	n.ObserveLateness(time.Millisecond)
	if h, l := n.Budgets(); h != 0 || l != 0 {
		t.Fatalf("budgets before warmup = (%v,%v), want (0,0)", h, l)
	}
}

func TestDelayEstimatorPerPeer(t *testing.T) {
	e := NewDelayEstimator(Config{MinSamples: 4, Quantile: 1, Margin: 1, Window: 8})
	for i := 0; i < 8; i++ {
		e.Observe(1, 2*time.Millisecond)
		e.Observe(2, 20*time.Millisecond)
	}
	b1, ok1 := e.Bound(1)
	b2, ok2 := e.Bound(2)
	if !ok1 || !ok2 {
		t.Fatal("bounds not ready")
	}
	if b1 != 2*time.Millisecond || b2 != 20*time.Millisecond {
		t.Fatalf("bounds = (%v,%v), want (2ms,20ms)", b1, b2)
	}
	if _, ok := e.Bound(3); ok {
		t.Fatal("unknown peer reported a bound")
	}
	if got := e.Peers(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Peers = %v, want [1 2]", got)
	}
	if e.Count(2) != 8 {
		t.Fatalf("Count(2) = %d, want 8", e.Count(2))
	}
}

// Concurrent observers and readers must be race-free (run under -race).
func TestConcurrentObserveVsRead(t *testing.T) {
	e := NewDelayEstimator(Config{Window: 64})
	n := NewNoiseEstimator(Config{Window: 64}, 0, 0)
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				e.Observe(g%3, time.Duration(i)*time.Microsecond)
				n.ObserveLateness(time.Duration(i) * time.Microsecond)
				n.ObserveHandler(time.Duration(i) * time.Microsecond)
			}
		}(g)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, p := range e.Peers() {
				e.Bound(p)
				e.EWMA(p)
			}
			n.Budgets()
			n.LatenessEstimate()
			n.HandlerEstimate()
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
}
