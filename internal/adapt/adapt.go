// Package adapt provides the online timeliness estimators behind the
// adaptive fail-aware timeouts (ROADMAP: "adaptive budget (EWMA of
// observed scheduling noise)" and "an adaptive failure detector could
// consume them"). It is the per-link timeliness-graph estimation of
// Delporte-Gallet et al. (Algorithms For Extracting Timeliness Graphs)
// applied to the paper's timed asynchronous model: instead of assuming
// one global one-way delay bound Delta for every link, each link's
// observed delay distribution is tracked online and the failure
// detector's per-peer suspicion deadline follows the link it actually
// has — "some links are synchronous, some aren't" (Granular Synchrony).
//
// Two estimators, two consumers:
//
//   - DelayEstimator: per-peer EWMA + windowed quantile over one-way
//     control-message delay (fed from the same synchronized send
//     timestamps that drive timewheel_peer_delay_seconds). Consumed by
//     fdetect.Detector for adaptive suspicion deadlines.
//   - NoiseEstimator: windowed quantile over local scheduling noise
//     (timer lateness, handler duration, queue wait). Consumed by
//     guard.Guard as an adaptive budget source, replacing the per-host
//     static budget calibration step (the 30ms-vs-100ms lesson in
//     docs/ROBUSTNESS.md).
//
// Everything is stdlib-only and safe for concurrent observe-vs-read:
// samples arrive from the event-loop/transport goroutines while bounds
// are read by the detector, the guard, and metric scrapes.
package adapt

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Config tunes an estimator. The zero value takes defaults.
type Config struct {
	// Window is the number of recent samples kept for the quantile
	// (default 128). Larger windows react slower but resist bursts.
	Window int
	// Quantile in (0,1] selects the order statistic used as the bound
	// basis (default 0.99).
	Quantile float64
	// Alpha is the EWMA smoothing factor in (0,1] (default 0.125, the
	// classic RFC 6298 SRTT weight).
	Alpha float64
	// Margin multiplies the quantile into a safety bound (default 1.5).
	Margin float64
	// MinSamples gates Bound: below this many observations the
	// estimator reports not-ready (default 8).
	MinSamples int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.Quantile <= 0 || c.Quantile > 1 {
		c.Quantile = 0.99
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.125
	}
	if c.Margin <= 0 {
		c.Margin = 1.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	return c
}

// Sampler is one online estimator: an EWMA plus a fixed ring of the
// last Window samples for the windowed quantile. Deterministic for a
// fixed sample sequence; safe for concurrent Observe and reads.
type Sampler struct {
	cfg Config

	mu    sync.Mutex
	ewma  float64 // nanoseconds; 0 until first sample
	ring  []int64 // nanoseconds
	next  int
	count uint64
}

// NewSampler creates a sampler with cfg (zero fields defaulted).
func NewSampler(cfg Config) *Sampler {
	c := cfg.withDefaults()
	return &Sampler{cfg: c, ring: make([]int64, c.Window)}
}

// Observe feeds one sample. Negative samples are clamped to zero.
func (s *Sampler) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := float64(d.Nanoseconds())
	s.mu.Lock()
	if s.count == 0 {
		s.ewma = ns
	} else {
		s.ewma += s.cfg.Alpha * (ns - s.ewma)
	}
	s.ring[s.next] = d.Nanoseconds()
	s.next = (s.next + 1) % len(s.ring)
	s.count++
	s.mu.Unlock()
}

// Count returns the number of samples observed.
func (s *Sampler) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// EWMA returns the exponentially weighted moving average, or 0 before
// the first sample.
func (s *Sampler) EWMA() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.ewma)
}

// Quantile returns the configured quantile over the sample window, or
// 0 before the first sample.
func (s *Sampler) Quantile() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quantileLocked()
}

func (s *Sampler) quantileLocked() time.Duration {
	n := int(s.count)
	if n == 0 {
		return 0
	}
	if n > len(s.ring) {
		n = len(s.ring)
	}
	buf := make([]int64, n)
	if s.count <= uint64(len(s.ring)) {
		copy(buf, s.ring[:n])
	} else {
		copy(buf, s.ring)
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(math.Ceil(s.cfg.Quantile*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return time.Duration(buf[idx])
}

// Bound returns quantile × Margin, and ok=false until MinSamples
// observations have arrived (callers should fall back to their static
// or most-lenient behavior until then).
func (s *Sampler) Bound() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count < uint64(s.cfg.MinSamples) {
		return 0, false
	}
	q := float64(s.quantileLocked().Nanoseconds())
	return time.Duration(q * s.cfg.Margin), true
}

// DelayEstimator tracks one Sampler per peer over observed one-way
// control-message delay. Peers are dense small integers (ProcessIDs).
type DelayEstimator struct {
	cfg Config

	mu    sync.Mutex
	peers map[int]*Sampler
}

// NewDelayEstimator creates a per-peer delay estimator.
func NewDelayEstimator(cfg Config) *DelayEstimator {
	return &DelayEstimator{cfg: cfg.withDefaults(), peers: make(map[int]*Sampler)}
}

func (e *DelayEstimator) sampler(peer int, create bool) *Sampler {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.peers[peer]
	if s == nil && create {
		s = NewSampler(e.cfg)
		e.peers[peer] = s
	}
	return s
}

// Observe feeds one delay sample for peer.
func (e *DelayEstimator) Observe(peer int, d time.Duration) {
	e.sampler(peer, true).Observe(d)
}

// Bound returns the estimated delay bound (quantile × margin) for peer;
// ok is false until enough samples have been observed from it.
func (e *DelayEstimator) Bound(peer int) (time.Duration, bool) {
	s := e.sampler(peer, false)
	if s == nil {
		return 0, false
	}
	return s.Bound()
}

// EWMA returns peer's smoothed delay, or 0 for an unknown peer.
func (e *DelayEstimator) EWMA(peer int) time.Duration {
	s := e.sampler(peer, false)
	if s == nil {
		return 0
	}
	return s.EWMA()
}

// Count returns the number of samples observed from peer.
func (e *DelayEstimator) Count(peer int) uint64 {
	s := e.sampler(peer, false)
	if s == nil {
		return 0
	}
	return s.Count()
}

// Peers returns the peer IDs with at least one sample, sorted.
func (e *DelayEstimator) Peers() []int {
	e.mu.Lock()
	out := make([]int, 0, len(e.peers))
	for p := range e.peers {
		out = append(out, p)
	}
	e.mu.Unlock()
	sort.Ints(out)
	return out
}

// NoiseEstimator tracks the host's own scheduling noise: timer
// lateness and handler duration, each with its own sampler. Budgets()
// implements the guard's adaptive budget source: each budget is the
// clamped noise bound, so the guard's definition of "this host has
// performance-failed" tracks what the host normally does instead of a
// static constant.
type NoiseEstimator struct {
	cfg         Config
	floor, ceil time.Duration

	lateness *Sampler // timer dispatch past its armed deadline + queue wait
	handler  *Sampler // handler wall-clock duration
}

// NewNoiseEstimator creates a scheduling-noise estimator whose budgets
// are clamped to [floor, ceil]. Zero floor/ceil take 5ms and 2s.
func NewNoiseEstimator(cfg Config, floor, ceil time.Duration) *NoiseEstimator {
	if floor <= 0 {
		floor = 5 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	if ceil < floor {
		ceil = floor
	}
	c := cfg.withDefaults()
	return &NoiseEstimator{
		cfg: c, floor: floor, ceil: ceil,
		lateness: NewSampler(c),
		handler:  NewSampler(c),
	}
}

// ObserveLateness feeds one timer-lateness (or queue-wait) sample.
func (n *NoiseEstimator) ObserveLateness(d time.Duration) { n.lateness.Observe(d) }

// ObserveHandler feeds one handler-duration sample.
func (n *NoiseEstimator) ObserveHandler(d time.Duration) { n.handler.Observe(d) }

func (n *NoiseEstimator) clamp(d time.Duration) time.Duration {
	if d < n.floor {
		return n.floor
	}
	if d > n.ceil {
		return n.ceil
	}
	return d
}

// Budgets returns the current adaptive handler and timer-lateness
// budgets: the clamped noise bound per dimension. Before enough
// samples, the floor is returned (most conservative: the guard falls
// back to its static budget while the estimator warms up — see
// guard.Config.Budgets).
func (n *NoiseEstimator) Budgets() (handler, timerLate time.Duration) {
	if b, ok := n.handler.Bound(); ok {
		handler = n.clamp(b)
	}
	if b, ok := n.lateness.Bound(); ok {
		timerLate = n.clamp(b)
	}
	return handler, timerLate
}

// LatenessEstimate returns the smoothed timer-lateness noise (EWMA).
func (n *NoiseEstimator) LatenessEstimate() time.Duration { return n.lateness.EWMA() }

// HandlerEstimate returns the smoothed handler-duration noise (EWMA).
func (n *NoiseEstimator) HandlerEstimate() time.Duration { return n.handler.EWMA() }
