package surveil

import (
	"sort"
	"testing"

	"timewheel/internal/model"
)

func ids(n int) []model.ProcessID {
	out := make([]model.ProcessID, n)
	for i := range out {
		out[i] = model.ProcessID(i)
	}
	return out
}

// TestRingHashDistribution: process ids are small sequential integers —
// exactly the low-entropy keys raw FNV clusters on (the PR 6 fabric
// skew). With the fmix64 finalizer the ring positions must spread: over
// 1000 sequential ids, the largest arc between adjacent ring positions
// must stay within a small multiple of the ideal uniform gap.
func TestRingHashDistribution(t *testing.T) {
	const n = 1000
	hashes := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	for _, p := range ids(n) {
		h := RingHash(p)
		if seen[h] {
			t.Fatalf("hash collision at id %d", p)
		}
		seen[h] = true
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	ideal := ^uint64(0) / n
	var maxGap uint64
	for i := 1; i < n; i++ {
		if g := hashes[i] - hashes[i-1]; g > maxGap {
			maxGap = g
		}
	}
	if wrap := (^uint64(0) - hashes[n-1]) + hashes[0]; wrap > maxGap {
		maxGap = wrap
	}
	// For n uniform points the expected max gap is ~ln(n)·ideal ≈ 7·ideal;
	// 20× leaves slack while still catching FNV-style clustering, which
	// produces arcs hundreds of times the ideal.
	if maxGap > 20*ideal {
		t.Errorf("max ring gap %d is %.1f× the uniform ideal; ring is clustered",
			maxGap, float64(maxGap)/float64(ideal))
	}
}

// TestWatchLoadBalance: with the whole view timely, watch edges are pure
// ring successors, so in-degree is exactly K for every member — no
// member carries a disproportionate surveillance load.
func TestWatchLoadBalance(t *testing.T) {
	const n, k = 50, 3
	members := ids(n)
	inDeg := make(map[model.ProcessID]int)
	for _, self := range members {
		s := New(self, Config{K: k})
		s.SetView(members, nil)
		if len(s.Watch()) != k {
			t.Fatalf("node %d watches %d peers, want %d", self, len(s.Watch()), k)
		}
		for _, w := range s.Watch() {
			if w == self {
				t.Fatalf("node %d watches itself", self)
			}
			inDeg[w]++
		}
	}
	for _, p := range members {
		if inDeg[p] != k {
			t.Errorf("node %d is watched by %d peers, want exactly %d", p, inDeg[p], k)
		}
	}
}

// TestSetViewDeterministic: two surveillors for the same self and view
// compute identical watch/relay sets, and a shuffled member list changes
// nothing — re-knitting after churn is deterministic across the group.
func TestSetViewDeterministic(t *testing.T) {
	members := ids(20)
	shuffled := append([]model.ProcessID(nil), members...)
	for i := range shuffled { // deterministic scramble
		j := (i*7 + 3) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	a := New(5, Config{K: 3})
	b := New(5, Config{K: 3})
	a.SetView(members, nil)
	b.SetView(shuffled, nil)
	if !equalIDs(a.Watch(), b.Watch()) || !equalIDs(a.Relays(), b.Relays()) {
		t.Errorf("member order changed the ring: %v/%v vs %v/%v",
			a.Watch(), a.Relays(), b.Watch(), b.Relays())
	}
}

// TestTimelyPreference: when the estimator marks some candidate edges
// untimely, the watcher keeps the immediate successor (coverage) but
// fills the remaining slots from timely candidates in the 2k window.
func TestTimelyPreference(t *testing.T) {
	members := ids(12)
	s := New(0, Config{K: 3})
	s.SetView(members, nil)
	ringOrder := append([]model.ProcessID(nil), s.Watch()...)

	// Mark everything untimely except the ring-order picks' alternates:
	// the 2k window beyond the first successor.
	bad := map[model.ProcessID]bool{ringOrder[1]: true, ringOrder[2]: true}
	s.SetView(members, func(p model.ProcessID) bool { return !bad[p] })
	got := s.Watch()
	if got[0] != ringOrder[0] {
		t.Errorf("immediate successor demoted: got %v, want first=%v", got, ringOrder[0])
	}
	for _, w := range got[1:] {
		if bad[w] {
			t.Errorf("untimely edge %v chosen over timely alternates: %v", w, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("watch set %v, want 3 members", got)
	}

	// Degenerate: everything untimely — fall back to pure ring order
	// rather than watching no one.
	s.SetView(members, func(model.ProcessID) bool { return false })
	if !equalIDs(s.Watch(), ringOrder) {
		t.Errorf("all-untimely fallback %v, want ring order %v", s.Watch(), ringOrder)
	}
}

// TestReKnitReAdoption: kill every ring watcher of a victim and install
// the shrunken view — the victim must again have K watchers among the
// survivors. This is the one-view re-adoption guarantee the package doc
// promises.
func TestReKnitReAdoption(t *testing.T) {
	members := ids(30)
	probe := New(0, Config{K: 3})
	probe.SetView(members, nil)
	const victim = model.ProcessID(17)
	watchers := probe.RingWatchersOf(victim)
	if len(watchers) != 3 {
		t.Fatalf("victim has %d ring watchers, want 3", len(watchers))
	}
	survivors := make([]model.ProcessID, 0, len(members))
	dead := make(map[model.ProcessID]bool)
	for _, w := range watchers {
		dead[w] = true
	}
	for _, m := range members {
		if !dead[m] {
			survivors = append(survivors, m)
		}
	}
	adopted := 0
	for _, self := range survivors {
		if self == victim {
			continue
		}
		s := New(self, Config{K: 3})
		s.SetView(survivors, nil)
		if contains(s.Watch(), victim) {
			adopted++
		}
	}
	if adopted != 3 {
		t.Errorf("victim re-adopted by %d survivors after watcher wipe-out, want 3", adopted)
	}
}

// TestSmallGroups: K clamps to the available peers; a singleton view
// watches nobody and a pair watches each other.
func TestSmallGroups(t *testing.T) {
	s := New(0, Config{K: 3})
	s.SetView([]model.ProcessID{0}, nil)
	if len(s.Watch()) != 0 || len(s.Relays()) != 0 {
		t.Errorf("singleton view: watch=%v relays=%v, want empty", s.Watch(), s.Relays())
	}
	s.SetView([]model.ProcessID{0, 1}, nil)
	if !equalIDs(s.Watch(), []model.ProcessID{1}) {
		t.Errorf("pair view: watch=%v, want [1]", s.Watch())
	}
}

// --- incarnation / dedup matrix -------------------------------------

// TestSuspicionDedup: the same (origin, originTS) sighting is Fresh
// exactly once; later copies are Duplicate; a newer origination from the
// same origin is Fresh again.
func TestSuspicionDedup(t *testing.T) {
	s := New(0, Config{K: 3})
	if d := s.ObserveSuspicion(7, 3, 0, 1000); d != Fresh {
		t.Fatalf("first sighting: %v, want fresh", d)
	}
	if d := s.ObserveSuspicion(7, 3, 0, 1000); d != Duplicate {
		t.Errorf("replay: %v, want duplicate", d)
	}
	if d := s.ObserveSuspicion(7, 3, 0, 900); d != Duplicate {
		t.Errorf("older copy: %v, want duplicate", d)
	}
	if d := s.ObserveSuspicion(7, 3, 0, 2000); d != Fresh {
		t.Errorf("re-origination: %v, want fresh", d)
	}
	// Distinct origins have independent watermarks.
	if d := s.ObserveSuspicion(7, 4, 0, 1000); d != Fresh {
		t.Errorf("different origin: %v, want fresh", d)
	}
}

// TestSuspicionDedupPerTarget: the watermark is per (origin, suspect),
// not per origin. One watcher originating suspicions of two ring
// neighbours (a correlated failure) stamps them in one monotone
// timestamp sequence; when relays deliver them out of order, the
// earlier-stamped suspicion of the OTHER target must still be Fresh —
// a per-origin watermark would swallow it as a duplicate and suppress a
// legitimate distinct suspicion.
func TestSuspicionDedupPerTarget(t *testing.T) {
	s := New(0, Config{K: 3})
	if d := s.ObserveSuspicion(7, 3, 0, 1000); d != Fresh {
		t.Fatalf("first target: %v, want fresh", d)
	}
	// Same origin, second target, earlier origin timestamp (reordered in
	// flight): a distinct suspicion stream.
	if d := s.ObserveSuspicion(8, 3, 0, 900); d != Fresh {
		t.Errorf("second target, out-of-order arrival: %v, want fresh", d)
	}
	// Each stream's replays still dedup independently.
	if d := s.ObserveSuspicion(7, 3, 0, 1000); d != Duplicate {
		t.Errorf("first-target replay: %v, want duplicate", d)
	}
	if d := s.ObserveSuspicion(8, 3, 0, 900); d != Duplicate {
		t.Errorf("second-target replay: %v, want duplicate", d)
	}
}

// TestStaleIncarnationSuppression is the false-suspicion lifecycle: a
// suspicion at incarnation i, a refute bumping to i+1, then straggler
// copies of the old suspicion — which must classify Stale everywhere so
// they are dropped, not relayed, and never reach the ejection path.
func TestStaleIncarnationSuppression(t *testing.T) {
	s := New(0, Config{K: 3})
	if d := s.ObserveSuspicion(7, 3, 0, 1000); d != Fresh {
		t.Fatalf("initial suspicion: %v", d)
	}
	if d := s.ObserveRefute(7, 1, 1500); d != Fresh {
		t.Fatalf("refute: %v, want fresh", d)
	}
	if got := s.Incarnation(7); got != 1 {
		t.Fatalf("incarnation after refute: %d, want 1", got)
	}
	// Straggler copy of the refuted suspicion, relayed via another origin.
	if d := s.ObserveSuspicion(7, 4, 0, 1200); d != Stale {
		t.Errorf("refuted-incarnation suspicion: %v, want stale", d)
	}
	// A new suspicion at the bumped incarnation is actionable again.
	if d := s.ObserveSuspicion(7, 4, 1, 1300); d != Fresh {
		t.Errorf("current-incarnation suspicion: %v, want fresh", d)
	}
	// A suspicion carrying a higher incarnation than we know fast-forwards
	// our view of the refutation history.
	if d := s.ObserveSuspicion(7, 5, 4, 1400); d != Fresh {
		t.Errorf("future-incarnation suspicion: %v, want fresh", d)
	}
	if got := s.Incarnation(7); got != 4 {
		t.Errorf("incarnation fast-forward: %d, want 4", got)
	}
}

// TestRefuteStaleAndDedup: refutes that do not advance the incarnation
// are Stale; watermark replays are Duplicate before staleness is even
// considered.
func TestRefuteStaleAndDedup(t *testing.T) {
	s := New(0, Config{K: 3})
	if d := s.ObserveRefute(7, 2, 1000); d != Fresh {
		t.Fatalf("first refute: %v", d)
	}
	if d := s.ObserveRefute(7, 2, 1000); d != Duplicate {
		t.Errorf("replayed refute: %v, want duplicate", d)
	}
	if d := s.ObserveRefute(7, 1, 1100); d != Stale {
		t.Errorf("regressing refute: %v, want stale", d)
	}
	if d := s.ObserveRefute(7, 3, 1200); d != Fresh {
		t.Errorf("advancing refute: %v, want fresh", d)
	}
}

// TestRefuteSelf: refuting a suspicion always bumps own incarnation
// strictly above the suspicion's, but the send permission honours the
// backoff window — the suspicion-storm brake.
func TestRefuteSelf(t *testing.T) {
	s := New(7, Config{K: 3, RefuteBackoff: 100})
	inc, ok := s.RefuteSelf(0, 1000)
	if !ok || inc != 1 {
		t.Fatalf("first refute: inc=%d ok=%v, want 1,true", inc, ok)
	}
	// Storm: more suspicions inside the backoff window. Incarnation keeps
	// climbing past each one, but no refute is sent.
	inc, ok = s.RefuteSelf(1, 1050)
	if ok {
		t.Error("refute allowed inside backoff window")
	}
	if inc != 2 {
		t.Errorf("incarnation after suppressed refute: %d, want 2", inc)
	}
	// Window elapsed: allowed again, and still strictly above the
	// suspicion's incarnation.
	inc, ok = s.RefuteSelf(5, 1200)
	if !ok || inc != 6 {
		t.Errorf("post-backoff refute: inc=%d ok=%v, want 6,true", inc, ok)
	}
	// Self-suspicions classify against own incarnation.
	if d := s.ObserveSuspicion(7, 3, 2, 2000); d != Stale {
		t.Errorf("old-incarnation self-suspicion: %v, want stale", d)
	}
	if d := s.ObserveSuspicion(7, 3, 6, 2100); d != Fresh {
		t.Errorf("current-incarnation self-suspicion: %v, want fresh", d)
	}
}

// TestShouldOriginate: per-target origination is rate-limited, and
// targets are independent.
func TestShouldOriginate(t *testing.T) {
	s := New(0, Config{K: 3, ResuspectAfter: 100})
	if !s.ShouldOriginate(7, 1000) {
		t.Fatal("first origination blocked")
	}
	if s.ShouldOriginate(7, 1050) {
		t.Error("re-origination allowed inside window")
	}
	if !s.ShouldOriginate(8, 1050) {
		t.Error("independent target blocked")
	}
	if !s.ShouldOriginate(7, 1100) {
		t.Error("origination blocked after window elapsed")
	}
}

// TestRelayRefloodAfterWindow: one relay flood per (suspect,
// incarnation) per ResuspectAfter window. Inside the window replays are
// capped (the O(N·k) bound); once the window elapses, a re-originated
// suspicion of the still-dead peer at the same incarnation floods again
// so nodes the first epidemic missed still learn of the failure.
func TestRelayRefloodAfterWindow(t *testing.T) {
	s := New(0, Config{K: 3, ResuspectAfter: 100})
	if !s.NeedsRelaySuspicion(7, 0, 1000) {
		t.Fatal("first flood blocked")
	}
	if s.NeedsRelaySuspicion(7, 0, 1050) {
		t.Error("re-flood allowed inside the window")
	}
	if !s.NeedsRelaySuspicion(7, 1, 1060) {
		t.Error("fresh incarnation blocked by the window")
	}
	if s.NeedsRelaySuspicion(7, 1, 1100) {
		t.Error("window did not restart at the incarnation-1 flood")
	}
	if !s.NeedsRelaySuspicion(7, 1, 1160) {
		t.Error("re-origination flood blocked after the window elapsed")
	}
	if !s.NeedsRelaySuspicion(8, 0, 1161) {
		t.Error("independent suspect blocked")
	}
}

// TestForget: a forgotten peer's gossip state resets — its next
// suspicion is fresh at incarnation 0 again (rejoin semantics).
func TestForget(t *testing.T) {
	s := New(0, Config{K: 3})
	s.ObserveSuspicion(7, 3, 0, 1000)
	s.ObserveRefute(7, 5, 1100)
	s.Forget(7)
	if got := s.Incarnation(7); got != 0 {
		t.Errorf("incarnation after forget: %d, want 0", got)
	}
	if d := s.ObserveSuspicion(7, 7, 0, 500); d != Fresh {
		t.Errorf("post-forget suspicion: %v, want fresh", d)
	}
}

func equalIDs(a, b []model.ProcessID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
