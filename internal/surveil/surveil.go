// Package surveil implements k-successor surveillance for large groups:
// instead of every member watching every peer (the paper's implicit
// all-to-all scheme, O(N²) surveillance edges), each member watches only
// k successors on a hashed ring and failure information travels as
// epidemic gossip — incarnation-numbered suspicions relayed to k ring
// successors and stopped by duplicate suppression, O(N·k) traffic per
// suspicion event.
//
// The ring orders members by FNV-1a64 of the process id finished with
// the Murmur3 fmix64 avalanche, the same scheme fabric/ring.go settled
// on: raw FNV over short low-entropy keys (small integer ids) clusters
// badly, and a clustered ring concentrates watch edges on a few members.
//
// Edge choice follows the timeliness-graph insight (Delporte-Gallet et
// al.; Granular Synchrony): correctness needs a timely subgraph, not a
// timely clique. When the adaptive estimator reports some candidate
// edges timely and others not, the watcher prefers timely edges — except
// that the immediate ring successor is always watched, which keeps the
// watch graph's coverage deterministic: every member is watched by at
// least its ring predecessor, so a member whose other watchers all died
// is re-adopted as soon as the next view install re-knits the ring.
//
// Suspicion/refute state is deliberately simple and bounded: one
// watermark per (origin, suspect) pair (suspicions — per-origin alone
// would let reordered relays about one target swallow a distinct
// suspicion of another), one per refuter (refutes), one incarnation
// number per peer. Origin timestamps are strictly monotone per origin
// (they are send timestamps), hence monotone per (origin, suspect)
// subsequence too, so a copy at or below the watermark is a duplicate
// and the epidemic terminates.
package surveil

import (
	"sort"

	"timewheel/internal/model"
)

// Config parameterises the surveillance subsystem. The zero value
// disables it (K=0 keeps the seed's all-to-all behaviour).
type Config struct {
	// K is the number of ring successors each member watches and the
	// fan-out of gossip relays. 0 disables surveillance.
	K int
	// SuspectAfter is how long a watched peer may stay silent (no timely
	// control message, no fresh gossip vouch) before its watcher
	// originates a suspicion. The member layer defaults it to two full
	// cycles: the decider rotation makes every member speak once per
	// cycle, so two silent cycles mean two missed decision slots.
	SuspectAfter model.Duration
	// RefuteBackoff is the minimum spacing between refutes of our own
	// suspicion — the storm brake: a partition that floods a node with
	// stale suspicions must not make it flood the group back.
	RefuteBackoff model.Duration
	// ResuspectAfter is the minimum spacing between re-originated
	// suspicions of the same target by the same watcher.
	ResuspectAfter model.Duration
}

// Disposition classifies an observed gossip message.
type Disposition int

const (
	// Fresh: first sighting, actionable, relay it.
	Fresh Disposition = iota
	// Duplicate: already seen (at-or-below the origin watermark); drop.
	Duplicate
	// Stale: carries an incarnation the refutation history has already
	// overtaken; drop without relaying.
	Stale
)

func (d Disposition) String() string {
	switch d {
	case Fresh:
		return "fresh"
	case Duplicate:
		return "duplicate"
	case Stale:
		return "stale"
	default:
		return "disposition(?)"
	}
}

// Surveillor holds one member's surveillance state: its current watch
// and relay sets (recomputed on every view install) and the gossip
// dedup/incarnation bookkeeping. It is confined to the member machine's
// event loop and needs no locking.
type Surveillor struct {
	self model.ProcessID
	cfg  Config

	ring   []ringEntry
	watch  []model.ProcessID
	relays []model.ProcessID

	selfInc     uint64
	incarnation map[model.ProcessID]uint64
	susSeen     map[susKey]model.Time          // per-(origin,suspect) suspicion watermark
	refSeen     map[model.ProcessID]model.Time // per-refuter refute watermark
	lastRefute  model.Time
	originated  map[model.ProcessID]model.Time // per-target origination watermark
	relayedSus  map[model.ProcessID]relayMark  // per-suspect relay bookkeeping
}

type ringEntry struct {
	id   model.ProcessID
	hash uint64
}

// susKey identifies one suspicion stream: who accuses whom. A watcher
// that originates suspicions of two targets interleaves their timestamps
// in one monotone sequence; keying the watermark by the pair keeps each
// stream's dedup independent, so relays of the two reordered in flight
// cannot suppress each other.
type susKey struct {
	origin  model.ProcessID
	suspect model.ProcessID
}

// relayMark records this node's contribution to the epidemic for one
// suspect: the highest incarnation it has relayed (stored +1 so the zero
// value means "never") and when — the re-flood aging clock.
type relayMark struct {
	inc uint64
	at  model.Time
}

// New creates a Surveillor for self. cfg.K must be positive; duration
// fields left zero are filled by the caller (the member machine derives
// them from the protocol params).
func New(self model.ProcessID, cfg Config) *Surveillor {
	return &Surveillor{
		self:        self,
		cfg:         cfg,
		incarnation: make(map[model.ProcessID]uint64),
		susSeen:     make(map[susKey]model.Time),
		refSeen:     make(map[model.ProcessID]model.Time),
		originated:  make(map[model.ProcessID]model.Time),
		relayedSus:  make(map[model.ProcessID]relayMark),
	}
}

// Config returns the configuration the Surveillor runs with.
func (s *Surveillor) Config() Config { return s.cfg }

// SetView recomputes the ring and this member's watch/relay sets for a
// new group view. timely, when non-nil, reports whether the adaptive
// estimator currently considers the direct edge to a peer timely; nil
// (static mode, or no estimate yet) falls back to pure ring order. The
// recomputation is deterministic in (members, timely answers), so after
// a partition or mass failure every survivor re-knits the same ring.
func (s *Surveillor) SetView(members []model.ProcessID, timely func(model.ProcessID) bool) {
	s.pruneDeparted(members)
	s.ring = s.ring[:0]
	for _, m := range members {
		if m == s.self {
			continue
		}
		s.ring = append(s.ring, ringEntry{id: m, hash: RingHash(m)})
	}
	sort.Slice(s.ring, func(i, j int) bool {
		if s.ring[i].hash != s.ring[j].hash {
			return s.ring[i].hash < s.ring[j].hash
		}
		return s.ring[i].id < s.ring[j].id
	})
	s.watch = s.watch[:0]
	s.relays = s.relays[:0]
	if len(s.ring) == 0 {
		return
	}

	// Successors: ring entries from self's insertion point, wrapping.
	selfHash := RingHash(s.self)
	start := sort.Search(len(s.ring), func(i int) bool {
		if s.ring[i].hash != selfHash {
			return s.ring[i].hash > selfHash
		}
		return s.ring[i].id > s.self
	})
	k := s.cfg.K
	if k > len(s.ring) {
		k = len(s.ring)
	}
	for i := 0; i < k; i++ {
		s.relays = append(s.relays, s.ring[(start+i)%len(s.ring)].id)
	}

	// Watch set: the immediate successor unconditionally (coverage),
	// then timely-preferred picks from a 2k candidate window.
	window := 2 * k
	if window > len(s.ring) {
		window = len(s.ring)
	}
	s.watch = append(s.watch, s.ring[start%len(s.ring)].id)
	if timely != nil {
		for i := 1; i < window && len(s.watch) < k; i++ {
			id := s.ring[(start+i)%len(s.ring)].id
			if timely(id) {
				s.watch = append(s.watch, id)
			}
		}
	}
	for i := 1; i < window && len(s.watch) < k; i++ {
		id := s.ring[(start+i)%len(s.ring)].id
		if !contains(s.watch, id) {
			s.watch = append(s.watch, id)
		}
	}
}

// pruneDeparted drops gossip state for processes outside the new view:
// a member that left and rejoins starts a fresh incarnation history, and
// its stale watermarks must not suppress the new one's gossip.
func (s *Surveillor) pruneDeparted(members []model.ProcessID) {
	keep := make(map[model.ProcessID]bool, len(members))
	for _, m := range members {
		keep[m] = true
	}
	for _, m := range []map[model.ProcessID]model.Time{s.refSeen, s.originated} {
		for p := range m {
			if !keep[p] {
				delete(m, p)
			}
		}
	}
	for k := range s.susSeen {
		if !keep[k.origin] || !keep[k.suspect] {
			delete(s.susSeen, k)
		}
	}
	for p := range s.incarnation {
		if !keep[p] {
			delete(s.incarnation, p)
		}
	}
	for p := range s.relayedSus {
		if !keep[p] {
			delete(s.relayedSus, p)
		}
	}
}

// Watch returns the peers this member currently watches. The slice is
// owned by the Surveillor; callers must not mutate or retain it across
// SetView calls.
func (s *Surveillor) Watch() []model.ProcessID { return s.watch }

// Watches reports whether p is one of this member's current watch
// targets — the gate that keeps a protocol-level timeout (which every
// member of the rotation observes at once) from turning into N parallel
// gossip originations: only p's designated watchers speak for it.
func (s *Surveillor) Watches(p model.ProcessID) bool { return contains(s.watch, p) }

// Relays returns the k ring successors gossip is relayed to. Same
// ownership rules as Watch.
func (s *Surveillor) Relays() []model.ProcessID { return s.relays }

// RingWatchersOf returns the members whose pure-ring watch window covers
// p in the current view: p's up-to-k ring predecessors. (The timely
// preference can widen a member's actual picks beyond ring order, but
// the immediate predecessor is always among the watchers — the coverage
// guarantee the re-adoption property rests on.)
func (s *Surveillor) RingWatchersOf(p model.ProcessID) []model.ProcessID {
	// Build the full ring including self for this query.
	ring := make([]ringEntry, 0, len(s.ring)+1)
	ring = append(ring, s.ring...)
	ring = append(ring, ringEntry{id: s.self, hash: RingHash(s.self)})
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].id < ring[j].id
	})
	at := -1
	for i, e := range ring {
		if e.id == p {
			at = i
			break
		}
	}
	if at < 0 {
		return nil
	}
	k := s.cfg.K
	if k > len(ring)-1 {
		k = len(ring) - 1
	}
	out := make([]model.ProcessID, 0, k)
	for i := 1; i <= k; i++ {
		out = append(out, ring[(at-i+len(ring))%len(ring)].id)
	}
	return out
}

// ObserveSuspicion records a suspicion sighting and classifies it.
// The (origin, suspect) watermark advances even for stale sightings, so
// a stale suspicion is dropped everywhere without re-relaying.
func (s *Surveillor) ObserveSuspicion(suspect, origin model.ProcessID, inc uint64, originTS model.Time) Disposition {
	key := susKey{origin: origin, suspect: suspect}
	if ts, ok := s.susSeen[key]; ok && originTS <= ts {
		return Duplicate
	}
	s.susSeen[key] = originTS
	if suspect == s.self {
		if inc < s.selfInc {
			return Stale
		}
		return Fresh
	}
	known := s.incarnation[suspect]
	if inc < known {
		return Stale
	}
	if inc > known {
		// The origin has seen a refutation cycle we missed; catch up.
		s.incarnation[suspect] = inc
	}
	return Fresh
}

// ObserveRefute records a refute sighting and classifies it. A fresh
// refute strictly advances the refuter's incarnation, invalidating every
// in-flight suspicion that named the old one.
func (s *Surveillor) ObserveRefute(refuter model.ProcessID, inc uint64, originTS model.Time) Disposition {
	if ts, ok := s.refSeen[refuter]; ok && originTS <= ts {
		return Duplicate
	}
	s.refSeen[refuter] = originTS
	if inc <= s.incarnation[refuter] {
		return Stale
	}
	s.incarnation[refuter] = inc
	return Fresh
}

// NeedsRelaySuspicion reports whether a fresh suspicion of (suspect,
// inc) still needs relaying from this node, and records the relay when
// it does. Concurrent watchers each originate their own suspicion of a
// dead peer (distinct origins, distinct timestamps — all Fresh), but one
// relay flood per (suspect, incarnation) per ResuspectAfter window is
// enough to reach the whole ring: without the cap the per-origin floods
// multiply into O(N²·k) frames per failure. The cap ages out on the
// ResuspectAfter cadence rather than holding for the node's lifetime —
// watchers re-originate a still-dead peer at the same incarnation once
// per window, and nodes whose expectations weren't armed when the first
// epidemic passed need those later rounds relayed to them.
func (s *Surveillor) NeedsRelaySuspicion(suspect model.ProcessID, inc uint64, now model.Time) bool {
	m, ok := s.relayedSus[suspect]
	if ok && m.inc >= inc+1 &&
		(s.cfg.ResuspectAfter <= 0 || now.Sub(m.at) < s.cfg.ResuspectAfter) {
		return false
	}
	if inc+1 > m.inc {
		m.inc = inc + 1
	}
	m.at = now
	s.relayedSus[suspect] = m
	return true
}

// Incarnation returns the highest incarnation known for p (own
// incarnation for self).
func (s *Surveillor) Incarnation(p model.ProcessID) uint64 {
	if p == s.self {
		return s.selfInc
	}
	return s.incarnation[p]
}

// RefuteSelf answers a suspicion naming self that carried incarnation
// inc: it bumps the own incarnation strictly above inc and reports
// whether a refute may be sent now, or false while the backoff window
// from the previous refute is still open (the anti-storm brake; the
// incarnation still advances so a later refute wins retroactively).
func (s *Surveillor) RefuteSelf(inc uint64, now model.Time) (uint64, bool) {
	if inc >= s.selfInc {
		s.selfInc = inc + 1
	}
	if s.lastRefute != 0 && now.Sub(s.lastRefute) < s.cfg.RefuteBackoff {
		return s.selfInc, false
	}
	s.lastRefute = now
	return s.selfInc, true
}

// ShouldOriginate reports whether a watcher that finds target silent may
// originate a suspicion now, advancing the per-target origination
// watermark when it does. Rate-limited by ResuspectAfter so a dead
// target costs one gossip epidemic per window, not one per slot.
func (s *Surveillor) ShouldOriginate(target model.ProcessID, now model.Time) bool {
	if last, ok := s.originated[target]; ok && now.Sub(last) < s.cfg.ResuspectAfter {
		return false
	}
	s.originated[target] = now
	return true
}

// Forget drops all gossip state for p (it left the team or rejoined
// under a fresh incarnation history).
func (s *Surveillor) Forget(p model.ProcessID) {
	delete(s.incarnation, p)
	for k := range s.susSeen {
		if k.origin == p || k.suspect == p {
			delete(s.susSeen, k)
		}
	}
	delete(s.refSeen, p)
	delete(s.originated, p)
	delete(s.relayedSus, p)
}

func contains(ps []model.ProcessID, p model.ProcessID) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

// FNV-1a64 constants and the Murmur3 fmix64 finalizer, matching
// fabric/ring.go. Keep these in sync: both rings must agree that short
// low-entropy keys need the avalanche pass (PR 6's raw-FNV skew).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// RingHash positions a process id on the surveillance ring: FNV-1a64
// over the id's little-endian bytes, finished with fmix64.
func RingHash(p model.ProcessID) uint64 {
	h := uint64(fnvOffset)
	v := uint64(int64(p))
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		v >>= 8
		h *= fnvPrime
	}
	return mix64(h)
}

// mix64 is the Murmur3 fmix64 finalizer: full avalanche, so consecutive
// ids land uniformly on the ring.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
