// Package clock models the hardware clocks of the timed asynchronous
// system: free-running quartz clocks whose drift rate is bounded by rho
// but which are not synchronized with one another (deviation can be
// arbitrarily large).
//
// A Hardware clock maps the simulation's real-time base to local clock
// time through a fixed offset and a constant drift rate. The fail-aware
// clock synchronization service (package csync) layers a correction on
// top via Adjusted.
package clock

import (
	"fmt"
	"math/rand"

	"timewheel/internal/model"
)

// Hardware is a drifting, unsynchronized local clock. The zero value is a
// perfect clock (no offset, no drift).
//
// Reading is a pure function of real time, so Hardware is safe for
// concurrent use.
type Hardware struct {
	// Offset is the clock's reading at real time 0.
	Offset model.Duration
	// DriftPPM is the clock's actual drift in parts per million; a
	// correct clock has |DriftPPM| <= Params.RhoPPM.
	DriftPPM int64
}

// NewRandomHardware draws a clock with offset in [-maxOffset, maxOffset]
// and drift uniform in [-rhoPPM, rhoPPM], using rng for determinism.
func NewRandomHardware(rng *rand.Rand, maxOffset model.Duration, rhoPPM int64) *Hardware {
	var off model.Duration
	if maxOffset > 0 {
		off = model.Duration(rng.Int63n(2*int64(maxOffset)+1)) - maxOffset
	}
	var drift int64
	if rhoPPM > 0 {
		drift = rng.Int63n(2*rhoPPM+1) - rhoPPM
	}
	return &Hardware{Offset: off, DriftPPM: drift}
}

// Read returns the clock's value at real time now:
//
//	H(now) = Offset + now*(1 + DriftPPM/1e6)
func (h *Hardware) Read(now model.Time) model.Time {
	drift := int64(now) * h.DriftPPM / 1_000_000
	return now.Add(h.Offset).Add(model.Duration(drift))
}

// Interval converts a real-time duration to the span this clock shows for
// it.
func (h *Hardware) Interval(d model.Duration) model.Duration {
	return d + model.Duration(int64(d)*h.DriftPPM/1_000_000)
}

// WithinEnvelope reports whether the clock's drift is within the model's
// rho bound, i.e. whether the clock is "correct" in the paper's sense.
func (h *Hardware) WithinEnvelope(rhoPPM int64) bool {
	return h.DriftPPM >= -rhoPPM && h.DriftPPM <= rhoPPM
}

func (h *Hardware) String() string {
	return fmt.Sprintf("hw(offset=%v drift=%dppm)", h.Offset, h.DriftPPM)
}

// Adjusted is a hardware clock plus a correction maintained by the clock
// synchronization service. Its reading approximates a global time base
// when synchronized.
type Adjusted struct {
	HW *Hardware
	// Correction is added to the hardware reading.
	Correction model.Duration
	// Synced records whether the owner currently believes the adjusted
	// clock is within epsilon of the synchronized time base. Fail-aware
	// clock synchronization guarantees the owner always knows this.
	Synced bool
}

// NewAdjusted wraps hw with zero correction, unsynchronized.
func NewAdjusted(hw *Hardware) *Adjusted { return &Adjusted{HW: hw} }

// Read returns the corrected clock value at real time now.
func (a *Adjusted) Read(now model.Time) model.Time {
	return a.HW.Read(now).Add(a.Correction)
}

// Apply installs a new correction and marks the clock synchronized.
func (a *Adjusted) Apply(correction model.Duration) {
	a.Correction = correction
	a.Synced = true
}

// Desync marks the clock unsynchronized (e.g. after the sync protocol
// failed to complete a timely round).
func (a *Adjusted) Desync() { a.Synced = false }

func (a *Adjusted) String() string {
	state := "unsynced"
	if a.Synced {
		state = "synced"
	}
	return fmt.Sprintf("adj(%v corr=%v %s)", a.HW, a.Correction, state)
}
