package clock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"timewheel/internal/model"
)

func TestPerfectClockIsIdentity(t *testing.T) {
	var h Hardware
	for _, now := range []model.Time{0, 1, 1_000_000, 123_456_789} {
		if got := h.Read(now); got != now {
			t.Errorf("Read(%v) = %v", now, got)
		}
	}
}

func TestOffsetAndDrift(t *testing.T) {
	h := Hardware{Offset: 500, DriftPPM: 100} // fast by 100ppm
	// At 1e6 us (1s), drift adds 100us.
	if got := h.Read(1_000_000); got != 1_000_600 {
		t.Errorf("Read(1s) = %v, want 1000600", got)
	}
	slow := Hardware{DriftPPM: -50}
	if got := slow.Read(2_000_000); got != 1_999_900 {
		t.Errorf("slow Read(2s) = %v, want 1999900", got)
	}
}

func TestInterval(t *testing.T) {
	h := Hardware{DriftPPM: 200}
	if got := h.Interval(1_000_000); got != 1_000_200 {
		t.Errorf("Interval = %v", got)
	}
	var perfect Hardware
	if got := perfect.Interval(12345); got != 12345 {
		t.Errorf("perfect Interval = %v", got)
	}
}

func TestWithinEnvelope(t *testing.T) {
	cases := []struct {
		drift, rho int64
		want       bool
	}{
		{0, 100, true},
		{100, 100, true},
		{-100, 100, true},
		{101, 100, false},
		{-101, 100, false},
	}
	for _, c := range cases {
		h := Hardware{DriftPPM: c.drift}
		if got := h.WithinEnvelope(c.rho); got != c.want {
			t.Errorf("drift=%d rho=%d: %v", c.drift, c.rho, got)
		}
	}
}

func TestRandomHardwareRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		h := NewRandomHardware(rng, 1000, 100)
		if h.Offset < -1000 || h.Offset > 1000 {
			t.Fatalf("offset out of range: %v", h.Offset)
		}
		if !h.WithinEnvelope(100) {
			t.Fatalf("drift out of range: %d", h.DriftPPM)
		}
	}
	// Degenerate bounds.
	h := NewRandomHardware(rng, 0, 0)
	if h.Offset != 0 || h.DriftPPM != 0 {
		t.Fatalf("zero-bound clock not perfect: %v", h)
	}
}

func TestDriftEnvelopeProperty(t *testing.T) {
	// |H(t) - t - Offset| <= |t| * rho/1e6 for clocks within the envelope.
	f := func(seed int64, rawT uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewRandomHardware(rng, 0, 100)
		now := model.Time(rawT)
		dev := int64(h.Read(now) - now)
		bound := int64(now) * 100 / 1_000_000
		if dev < 0 {
			dev = -dev
		}
		return dev <= bound+1 // +1 for integer truncation
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonotonicity(t *testing.T) {
	// Clocks with |drift| < 1e6 ppm are strictly monotonic over
	// microsecond steps scaled to avoid truncation plateaus; check
	// non-decreasing at least.
	h := Hardware{DriftPPM: -300}
	prev := h.Read(0)
	for now := model.Time(1); now < 10_000; now++ {
		cur := h.Read(now)
		if cur < prev {
			t.Fatalf("clock ran backwards at %v: %v < %v", now, cur, prev)
		}
		prev = cur
	}
}

func TestAdjusted(t *testing.T) {
	h := &Hardware{Offset: 100}
	a := NewAdjusted(h)
	if a.Synced {
		t.Fatalf("new adjusted clock should start unsynchronized")
	}
	if got := a.Read(50); got != 150 {
		t.Errorf("Read before correction: %v", got)
	}
	a.Apply(-100)
	if !a.Synced {
		t.Fatalf("Apply should mark synced")
	}
	if got := a.Read(50); got != 50 {
		t.Errorf("Read after correction: %v", got)
	}
	a.Desync()
	if a.Synced {
		t.Fatalf("Desync failed")
	}
	// Correction persists across desync (clock keeps last estimate).
	if got := a.Read(50); got != 50 {
		t.Errorf("Read after desync: %v", got)
	}
}

func TestStringers(t *testing.T) {
	h := &Hardware{Offset: 5, DriftPPM: 7}
	if h.String() == "" {
		t.Error("Hardware.String empty")
	}
	a := NewAdjusted(h)
	if a.String() == "" {
		t.Error("Adjusted.String empty")
	}
	a.Apply(3)
	if a.String() == "" {
		t.Error("Adjusted.String empty when synced")
	}
}
