// Replicated key-value store: the complete downstream-user recipe —
// package rsm with a Snapshotter state machine, so replicas survive
// restarts. A three-replica store processes writes through the
// replicated log; one replica is killed and restarted *empty*, and the
// join-time snapshot restores everything it missed.
//
//	go run ./examples/replicated-kv
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"timewheel"
	"timewheel/rsm"
)

// kv is a deterministic replicated map. Commands:
//
//	set <key> <value>   -> "OK"
//	get <key>           -> the value (reads via the log are linearizable)
//	del <key>           -> "OK"
//
// It implements rsm.Snapshotter, so a restarted replica recovers state.
type kv struct {
	mu   sync.Mutex
	data map[string]string
}

func newKV() *kv { return &kv{data: make(map[string]string)} }

func (s *kv) Apply(cmd []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	parts := strings.SplitN(string(cmd), " ", 3)
	switch parts[0] {
	case "set":
		if len(parts) == 3 {
			s.data[parts[1]] = parts[2]
			return []byte("OK")
		}
	case "get":
		if len(parts) >= 2 {
			return []byte(s.data[parts[1]])
		}
	case "del":
		if len(parts) >= 2 {
			delete(s.data, parts[1])
			return []byte("OK")
		}
	}
	return []byte("ERR")
}

func (s *kv) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, _ := json.Marshal(s.data)
	return b
}

func (s *kv) Restore(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]string)
	json.Unmarshal(b, &s.data) //nolint:errcheck
}

func (s *kv) dump() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s ", k, s.data[k])
	}
	return strings.TrimSpace(sb.String())
}

const n = 3

func main() {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: time.Millisecond, Seed: 11})
	defer hub.Close()

	stores := make([]*kv, n)
	reps := make([]*rsm.Replica, n)
	mk := func(i int) *rsm.Replica {
		rep, err := rsm.New(rsm.Config{
			Node: timewheel.Config{
				ID: i, ClusterSize: n, Transport: hub.Transport(i),
			},
			Machine: stores[i],
		})
		if err != nil {
			log.Fatal(err)
		}
		rep.Start()
		return rep
	}
	for i := 0; i < n; i++ {
		stores[i] = newKV()
		reps[i] = mk(i)
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	waitView := func(r *rsm.Replica, size int) {
		for {
			if v, ok := r.View(); ok && len(v.Members) == size {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	submit := func(r *rsm.Replica, cmd string) string {
		for {
			res, err := r.Submit(ctx, []byte(cmd))
			if err == nil {
				return string(res.Response)
			}
			if err == timewheel.ErrNotMember || err == rsm.ErrAbandoned {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			log.Fatalf("submit %q: %v", cmd, err)
		}
	}

	for _, r := range reps {
		waitView(r, n)
	}
	fmt.Println("== store up; writing through different replicas ...")
	submit(reps[0], "set color blue")
	submit(reps[1], "set shape circle")
	submit(reps[2], "set size large")
	fmt.Println("   get color ->", submit(reps[1], "get color"))

	fmt.Println("\n== killing replica 2 and writing more ...")
	reps[2].Stop()
	waitView(reps[0], n-1)
	submit(reps[0], "set color red")
	submit(reps[1], "del size")

	fmt.Println("\n== restarting replica 2 with an EMPTY store ...")
	stores[2] = newKV()
	reps[2] = mk(2)
	waitView(reps[2], n)
	// A barrier makes local reads linearizable as of this instant.
	if err := reps[2].Barrier(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   replica 2 after snapshot recovery:", stores[2].dump())
	fmt.Println("   replica 0 for comparison:         ", stores[0].dump())
	if stores[2].dump() == stores[0].dump() {
		fmt.Println("   stores agree ✔")
	} else {
		fmt.Println("   STORES DIVERGED ✘")
	}
	fmt.Println("\ndone.")
}
