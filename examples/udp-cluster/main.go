// UDP cluster: the same public API as the quickstart, but over real UDP
// sockets on localhost — the paper's deployment shape (Unix UDP
// datagrams). Three nodes run inside this one process purely for
// convenience; point the address list at three hosts and run one node
// per machine for a real deployment (see also cmd/twnode).
//
//	go run ./examples/udp-cluster
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"timewheel"
)

func main() {
	addrs := map[int]string{
		0: "127.0.0.1:19780",
		1: "127.0.0.1:19781",
		2: "127.0.0.1:19782",
	}

	var mu sync.Mutex
	say := func(format string, args ...any) {
		mu.Lock()
		fmt.Printf(format+"\n", args...)
		mu.Unlock()
	}

	nodes := make([]*timewheel.Node, len(addrs))
	for i := range nodes {
		i := i
		tr, err := timewheel.NewUDPTransport(i, addrs)
		if err != nil {
			log.Fatalf("udp transport %d: %v", i, err)
		}
		nodes[i], err = timewheel.NewNode(timewheel.Config{
			ID:          i,
			ClusterSize: len(addrs),
			Transport:   tr,
			OnDeliver: func(d timewheel.Delivery) {
				say("  p%d <- o%-3d %q (from p%d, %v/%v)", i, d.Ordinal, d.Payload, d.Proposer, d.Order, d.Atomicity)
			},
			OnViewChange: func(v timewheel.View) {
				say("  p%d view g%d %v", i, v.Seq, v.Members)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i].Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	say("== waiting for the group over UDP ...")
	deadline := time.Now().Add(30 * time.Second)
	for {
		formed := true
		for _, n := range nodes {
			if v, ok := n.CurrentView(); !ok || len(v.Members) != len(addrs) {
				formed = false
			}
		}
		if formed {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("group never formed — are the ports free?")
		}
		time.Sleep(5 * time.Millisecond)
	}

	say("\n== one update per semantics class ...")
	type trial struct {
		o timewheel.Order
		a timewheel.Atomicity
		p string
	}
	for k, tr := range []trial{
		{timewheel.Unordered, timewheel.Weak, "fire-and-forget"},
		{timewheel.TotalOrder, timewheel.Strong, "ordered-majority"},
		{timewheel.TotalOrder, timewheel.Strict, "ordered-everyone"},
		{timewheel.TimeOrder, timewheel.Weak, "timestamped"},
	} {
		if err := nodes[k%len(nodes)].Propose([]byte(tr.p), tr.o, tr.a); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(2 * time.Second)
	say("\ndone.")
}
