// Replicated counter: a bank-style replicated state machine on top of
// the timewheel service — the paper's motivating use ("a dependable
// service ... implemented by a team of replicated servers [that]
// maintain a consistent replicated service state").
//
// Every replica applies deposit/withdraw commands in the total order the
// broadcast service establishes, so all replicas end with identical
// balances even though commands originate at different replicas
// concurrently and a replica crashes mid-run.
//
//	go run ./examples/replicated-counter
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	"timewheel"
)

const n = 4

// account is one replica's state machine: a balance and an applied-op
// count. Commands are "deposit <k>" / "withdraw <k>".
type account struct {
	mu      sync.Mutex
	balance int64
	applied int
	history []string
}

func (a *account) apply(cmd string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	parts := strings.Fields(cmd)
	if len(parts) != 2 {
		return
	}
	k, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return
	}
	switch parts[0] {
	case "deposit":
		a.balance += k
	case "withdraw":
		if a.balance >= k { // the deterministic business rule
			a.balance -= k
		}
	}
	a.applied++
	a.history = append(a.history, cmd)
}

func (a *account) snapshot() (int64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance, a.applied
}

func main() {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: 2 * time.Millisecond, Seed: 7})
	defer hub.Close()

	accounts := make([]*account, n)
	nodes := make([]*timewheel.Node, n)
	for i := 0; i < n; i++ {
		i := i
		accounts[i] = &account{}
		node, err := timewheel.NewNode(timewheel.Config{
			ID:          i,
			ClusterSize: n,
			Transport:   hub.Transport(i),
			OnDeliver: func(d timewheel.Delivery) {
				// Total order means every replica applies the same
				// command sequence.
				accounts[i].apply(string(d.Payload))
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		node.Start()
	}

	// Wait for the group.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if v, ok := nodes[0].CurrentView(); ok && len(v.Members) == n {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("group never formed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("group formed; issuing concurrent commands from all replicas ...")

	// Concurrent clients at every replica.
	var wg sync.WaitGroup
	cmds := []string{"deposit 100", "withdraw 30", "deposit 7", "withdraw 200", "deposit 55"}
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, c := range cmds {
				for {
					err := nodes[r].Propose([]byte(c), timewheel.TotalOrder, timewheel.Strong)
					if err == nil {
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	wg.Wait()

	// Crash a replica mid-stream and keep going on the survivors.
	fmt.Println("crashing replica 3 ...")
	nodes[3].Stop()
	for r := 0; r < 3; r++ {
		if err := nodes[r].Propose([]byte("deposit 1"), timewheel.TotalOrder, timewheel.Strong); err != nil {
			// The view may be reconfiguring; retry once it settles.
			time.Sleep(500 * time.Millisecond)
			nodes[r].Propose([]byte("deposit 1"), timewheel.TotalOrder, timewheel.Strong) //nolint:errcheck
		}
	}

	// Let deliveries settle, then compare replicas.
	want := n*len(cmds) + 3
	deadline = time.Now().Add(30 * time.Second)
	for {
		done := true
		for r := 0; r < 3; r++ {
			if _, applied := accounts[r].snapshot(); applied < want {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("\nfinal replica states (survivors):")
	var ref int64
	agree := true
	for r := 0; r < 3; r++ {
		bal, applied := accounts[r].snapshot()
		fmt.Printf("  replica %d: balance=%d applied=%d\n", r, bal, applied)
		if r == 0 {
			ref = bal
		} else if bal != ref {
			agree = false
		}
	}
	if agree {
		fmt.Println("replicas agree ✔")
	} else {
		fmt.Println("REPLICAS DIVERGED ✘")
	}
	for r := 0; r < 3; r++ {
		nodes[r].Stop()
	}
}
