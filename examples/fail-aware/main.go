// Fail-aware client: the two self-knowledge guarantees the timed
// asynchronous model gives applications, exercised on a live in-memory
// cluster:
//
//  1. UpToDate — a node always knows whether its membership view is
//     current (paper §3). We watch it flip to false on the minority side
//     of a "partition" (simulated here by stopping a majority) and back
//     to true after recovery... since the memory hub has no partition
//     control, we demonstrate with a node that is stopped and replaced.
//
//  2. Termination — the broadcast's termination semantic: a proposer
//     learns, within a bounded window, whether each of its updates was
//     delivered or abandoned.
//
//     go run ./examples/fail-aware
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"timewheel"
)

func main() {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: time.Millisecond, Seed: 3})
	defer hub.Close()

	var mu sync.Mutex
	outcomes := make(map[uint64]bool)
	nodes := make([]*timewheel.Node, 3)
	for i := range nodes {
		i := i
		cfg := timewheel.Config{
			ID:          i,
			ClusterSize: 3,
			Transport:   hub.Transport(i),
		}
		if i == 0 {
			cfg.Termination = 2 * time.Second
			cfg.OnOutcome = func(o timewheel.Outcome) {
				mu.Lock()
				outcomes[o.Seq] = o.Delivered
				mu.Unlock()
			}
		}
		n, err := timewheel.NewNode(cfg)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Stop()
			}
		}
	}()

	waitFor(func() bool {
		v, ok := nodes[0].CurrentView()
		return ok && len(v.Members) == 3
	}, "formation")
	fmt.Println("group formed; UpToDate(p0) =", nodes[0].UpToDate())

	// A delivered update produces a positive outcome.
	if err := nodes[0].Propose([]byte("will-deliver"), timewheel.TotalOrder, timewheel.Strong); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(outcomes) == 1
	}, "first outcome")
	mu.Lock()
	fmt.Println("outcome for update 1: delivered =", anyValue(outcomes))
	mu.Unlock()

	// Stop the other two nodes: p0 is alone, below majority. Its view
	// goes stale and it KNOWS it (fail-awareness); a new proposal's
	// termination window expires undelivered.
	fmt.Println("\nstopping p1 and p2 ...")
	nodes[1].Stop()
	nodes[2].Stop()
	nodes[1], nodes[2] = nil, nil

	waitFor(func() bool { return !nodes[0].UpToDate() }, "fail-awareness")
	fmt.Println("UpToDate(p0) =", nodes[0].UpToDate(), " (p0 knows its view is stale)")
	fmt.Println("state(p0)    =", nodes[0].StateName())

	err := nodes[0].Propose([]byte("will-abandon"), timewheel.TotalOrder, timewheel.Strong)
	switch err {
	case nil:
		// Proposed before the view collapsed: the termination window
		// reports the abandonment.
		waitFor(func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(outcomes) == 2
		}, "second outcome")
		mu.Lock()
		fmt.Println("outcome for update 2: delivered =", outcomes[maxKey(outcomes)])
		mu.Unlock()
	case timewheel.ErrNotMember:
		fmt.Println("propose rejected immediately:", err)
	default:
		log.Fatal(err)
	}
	fmt.Println("\ndone.")
}

func waitFor(cond func() bool, what string) {
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func anyValue(m map[uint64]bool) bool {
	for _, v := range m {
		return v
	}
	return false
}

func maxKey(m map[uint64]bool) uint64 {
	var best uint64
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}
