// Partition healing on the deterministic simulator: a five-node group is
// split into a majority {0,1,2} and a minority {3,4}. The majority
// reconfigures and keeps delivering; the minority — fail-aware — knows
// it has no up-to-date group and delivers nothing. After healing, the
// minority rejoins through the join protocol with state transfer.
//
// This example uses the simulation substrate (internal/node) so the
// partition is scripted and the timeline is exact and reproducible.
//
//	go run ./examples/partition-healing
package main

import (
	"fmt"
	"log"

	"timewheel/internal/check"
	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

func main() {
	c := node.NewCluster(node.Options{
		Seed:          2026,
		Params:        model.DefaultParams(5),
		PerfectClocks: true,
	})
	c.Start()
	cycle := c.Params.CycleLen()

	c.Run(4 * cycle)
	report(c, "after formation")

	// Split: {0,1,2} | {3,4}.
	fmt.Println("\n-- partitioning {0,1,2} | {3,4}")
	c.Net.Partition([]model.ProcessID{0, 1, 2}, []model.ProcessID{3, 4})
	c.Run(8 * cycle)
	report(c, "during partition")

	// Majority-side progress; minority must stay silent.
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	c.Node(0).Propose([]byte("majority-update"), sem)
	before3 := len(c.Node(3).Deliveries)
	c.Run(4 * cycle)
	if got := len(c.Node(3).Deliveries) - before3; got != 0 {
		log.Fatalf("minority delivered %d updates while partitioned", got)
	}
	fmt.Println("   minority delivered nothing while partitioned (fail-aware) ✔")

	fmt.Println("\n-- healing the partition")
	c.Net.Heal()
	c.Run(12 * cycle)
	report(c, "after healing")

	// The rejoined members receive the missed update via state transfer
	// or the retained log.
	for _, id := range []model.ProcessID{3, 4} {
		g, ok := c.Node(id).CurrentGroup()
		if !ok || g.Size() != 5 {
			log.Fatalf("p%v did not rejoin: %v", id, g)
		}
	}
	fmt.Println("   minority rejoined the full group ✔")

	if res := check.All(c); !res.OK() {
		log.Fatalf("invariants: %s", res)
	}
	fmt.Println("\nall protocol invariants hold ✔")
}

func report(c *node.Cluster, phase string) {
	fmt.Printf("-- %s (t=%v)\n", phase, c.Sim.Now())
	for _, n := range c.Nodes {
		g, ok := n.CurrentGroup()
		state := n.State()
		switch {
		case ok:
			fmt.Printf("   p%d %-16v view g%d %v\n", n.ID, state, g.Seq, g.Members)
		case state == member.StateJoin:
			fmt.Printf("   p%d %-16v (rejoining)\n", n.ID, state)
		default:
			fmt.Printf("   p%d %-16v (no up-to-date group)\n", n.ID, state)
		}
	}
}
