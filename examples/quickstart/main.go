// Quickstart: a five-node in-memory timewheel cluster. Watch the group
// form through the time-slotted join protocol, broadcast a few totally
// ordered updates, crash one node, and watch the single-failure election
// install the shrunk view without interrupting the service.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"timewheel"
)

const n = 5

func main() {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{
		MaxDelay: 2 * time.Millisecond, // an in-process "LAN"
		Seed:     1,
	})
	defer hub.Close()

	var mu sync.Mutex
	nodes := make([]*timewheel.Node, n)
	for i := 0; i < n; i++ {
		i := i
		node, err := timewheel.NewNode(timewheel.Config{
			ID:          i,
			ClusterSize: n,
			Transport:   hub.Transport(i),
			OnDeliver: func(d timewheel.Delivery) {
				mu.Lock()
				fmt.Printf("  p%d delivered o%-3d %q (from p%d)\n", i, d.Ordinal, d.Payload, d.Proposer)
				mu.Unlock()
			},
			OnViewChange: func(v timewheel.View) {
				mu.Lock()
				fmt.Printf("  p%d installed view g%d %v\n", i, v.Seq, v.Members)
				mu.Unlock()
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		node.Start()
	}

	fmt.Println("== forming the initial group (time-slotted join protocol) ...")
	waitForView(nodes[:n], n)

	fmt.Println("\n== broadcasting three totally ordered updates ...")
	for k, payload := range []string{"alpha", "beta", "gamma"} {
		if err := nodes[k%n].Propose([]byte(payload), timewheel.TotalOrder, timewheel.Strong); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(800 * time.Millisecond)

	fmt.Println("\n== crashing p4 (the membership protocol detects the silent decider slot) ...")
	nodes[4].Stop()
	waitForView(nodes[:4], n-1)

	fmt.Println("\n== service continues in the shrunk group ...")
	if err := nodes[0].Propose([]byte("delta"), timewheel.TotalOrder, timewheel.Strong); err != nil {
		log.Fatal(err)
	}
	time.Sleep(800 * time.Millisecond)

	for _, node := range nodes[:4] {
		node.Stop()
	}
	fmt.Println("\ndone.")
}

// waitForView blocks until every listed node reports a view of the given
// size.
func waitForView(nodes []*timewheel.Node, size int) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for _, node := range nodes {
			v, have := node.CurrentView()
			if !have || len(v.Members) != size {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("view never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
