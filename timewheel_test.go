package timewheel

import (
	"sync"
	"testing"
	"time"
)

// fastParams keeps real-time tests quick: D=4ms, slot ~7.5ms.
func fastParams() Params {
	return Params{
		Delta:   2 * time.Millisecond,
		D:       4 * time.Millisecond,
		Epsilon: time.Millisecond,
		Sigma:   time.Millisecond,
		SlotPad: 500 * time.Microsecond,
	}
}

type recorder struct {
	mu         sync.Mutex
	deliveries []Delivery
	views      []View
}

func (r *recorder) onDeliver(d Delivery) {
	r.mu.Lock()
	r.deliveries = append(r.deliveries, d)
	r.mu.Unlock()
}

func (r *recorder) onView(v View) {
	r.mu.Lock()
	r.views = append(r.views, v)
	r.mu.Unlock()
}

func (r *recorder) deliveryCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.deliveries)
}

// startCluster boots n in-memory nodes and waits until they all report a
// full view.
func startCluster(t *testing.T, n int) ([]*Node, []*recorder, func()) {
	t.Helper()
	hub := NewMemoryHub(HubConfig{MaxDelay: 500 * time.Microsecond, Seed: 42})
	nodes := make([]*Node, n)
	recs := make([]*recorder, n)
	for i := 0; i < n; i++ {
		recs[i] = &recorder{}
		node, err := NewNode(Config{
			ID:           i,
			ClusterSize:  n,
			Transport:    hub.Transport(i),
			Params:       fastParams(),
			OnDeliver:    recs[i].onDeliver,
			OnViewChange: recs[i].onView,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for _, nd := range nodes {
		nd.Start()
	}
	stop := func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		hub.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, nd := range nodes {
			v, ok := nd.CurrentView()
			if !ok || len(v.Members) != n {
				all = false
				break
			}
		}
		if all {
			return nodes, recs, stop
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("cluster never formed a full view")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRealTimeFormationAndBroadcast(t *testing.T) {
	nodes, recs, stop := startCluster(t, 3)
	defer stop()

	if err := nodes[0].Propose([]byte("hello"), TotalOrder, Strong); err != nil {
		t.Fatalf("propose: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, r := range recs {
			if r.deliveryCount() < 1 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivery timeout: %d %d %d",
				recs[0].deliveryCount(), recs[1].deliveryCount(), recs[2].deliveryCount())
		}
		time.Sleep(time.Millisecond)
	}
	for i, r := range recs {
		r.mu.Lock()
		d := r.deliveries[0]
		r.mu.Unlock()
		if string(d.Payload) != "hello" || d.Proposer != 0 || d.Order != TotalOrder || d.Atomicity != Strong {
			t.Fatalf("node %d delivery: %+v", i, d)
		}
	}
	// Views were reported.
	for i, r := range recs {
		r.mu.Lock()
		nv := len(r.views)
		r.mu.Unlock()
		if nv == 0 {
			t.Fatalf("node %d saw no view change", i)
		}
	}
	if s := nodes[0].StateName(); s != "failure-free" {
		t.Fatalf("state: %s", s)
	}
}

func TestRealTimeCrashRecovery(t *testing.T) {
	nodes, _, stop := startCluster(t, 3)
	defer stop()

	// Stop node 2 abruptly; the survivors must reconfigure to {0,1}.
	nodes[2].Stop()
	deadline := time.Now().Add(15 * time.Second)
	for {
		v0, ok0 := nodes[0].CurrentView()
		v1, ok1 := nodes[1].CurrentView()
		if ok0 && ok1 && len(v0.Members) == 2 && len(v1.Members) == 2 && v0.Seq == v1.Seq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never excluded the stopped node: %v %v", v0, v1)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestProposeWhileJoiningFails(t *testing.T) {
	hub := NewMemoryHub(HubConfig{})
	defer hub.Close()
	n, err := NewNode(Config{ID: 0, ClusterSize: 3, Transport: hub.Transport(0), Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	n.Start()
	// Alone, it can never form a majority of 3.
	if err := n.Propose([]byte("x"), Unordered, Weak); err != ErrNotMember {
		t.Fatalf("propose while joining: %v", err)
	}
	if _, ok := n.CurrentView(); ok {
		t.Fatalf("lone node claims a view")
	}
	if s := n.StateName(); s != "join" {
		t.Fatalf("state: %s", s)
	}
}

func TestConfigValidation(t *testing.T) {
	hub := NewMemoryHub(HubConfig{})
	defer hub.Close()
	cases := []Config{
		{ID: 0, ClusterSize: 0, Transport: hub.Transport(0)},
		{ID: -1, ClusterSize: 3, Transport: hub.Transport(0)},
		{ID: 3, ClusterSize: 3, Transport: hub.Transport(0)},
		{ID: 0, ClusterSize: 3, Transport: nil},
	}
	for i, cfg := range cases {
		if _, err := NewNode(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestStopIsIdempotentAndRejectsPropose(t *testing.T) {
	hub := NewMemoryHub(HubConfig{})
	defer hub.Close()
	n, err := NewNode(Config{ID: 0, ClusterSize: 1, Transport: hub.Transport(0), Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Stop()
	n.Stop()
	if err := n.Propose([]byte("x"), Unordered, Weak); err != ErrStopped {
		t.Fatalf("propose after stop: %v", err)
	}
}

func TestSingletonClusterRealTime(t *testing.T) {
	hub := NewMemoryHub(HubConfig{})
	defer hub.Close()
	var rec recorder
	n, err := NewNode(Config{
		ID: 0, ClusterSize: 1, Transport: hub.Transport(0), Params: fastParams(),
		OnDeliver: rec.onDeliver,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	n.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := n.CurrentView(); ok && len(v.Members) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("singleton never formed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := n.Propose([]byte("solo"), TotalOrder, Strict); err != nil {
		t.Fatalf("propose: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for rec.deliveryCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("singleton never delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUDPClusterEndToEnd(t *testing.T) {
	// Bootstrap: grab three loopback ports.
	probe := func() string {
		tr, err := NewUDPTransport(0, map[int]string{0: "127.0.0.1:0"})
		if err != nil {
			t.Skipf("udp unavailable: %v", err)
		}
		type local interface{ Close() error }
		addr := tr.(interface{ LocalAddr() string })
		_ = addr
		tr.Close()
		return ""
	}
	_ = probe
	addrs := map[int]string{0: "127.0.0.1:39701", 1: "127.0.0.1:39702", 2: "127.0.0.1:39703"}
	nodes := make([]*Node, 3)
	recs := make([]*recorder, 3)
	for i := 0; i < 3; i++ {
		tr, err := NewUDPTransport(i, addrs)
		if err != nil {
			t.Skipf("udp unavailable: %v", err)
		}
		recs[i] = &recorder{}
		nodes[i], err = NewNode(Config{
			ID: i, ClusterSize: 3, Transport: tr, Params: fastParams(),
			OnDeliver: recs[i].onDeliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		all := true
		for _, n := range nodes {
			if v, ok := n.CurrentView(); !ok || len(v.Members) != 3 {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("udp cluster never formed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := nodes[1].Propose([]byte("over-udp"), TotalOrder, Weak); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for recs[2].deliveryCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("udp delivery timeout")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	nodes, _, stop := startCluster(t, 3)
	defer stop()
	if err := nodes[0].Propose([]byte("m"), TotalOrder, Weak); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := nodes[0].Metrics()
		if m.Proposed == 1 && m.Delivered >= 1 && m.ViewChanges >= 1 && m.DecisionsSent >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never reflected activity: %+v", m)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Failure-free: no election machinery ran.
	m := nodes[0].Metrics()
	if m.SingleElections != 0 || m.ReconfigElections != 0 || m.NoDecisionsSent != 0 {
		t.Fatalf("election counters nonzero in failure-free run: %+v", m)
	}
}

func TestParamsConversionDefaults(t *testing.T) {
	// Zero params take LAN defaults; set fields override.
	p := Params{}.toModel(5)
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	q := Params{
		Delta:   7 * time.Millisecond,
		D:       21 * time.Millisecond,
		Epsilon: 3 * time.Millisecond,
		Sigma:   4 * time.Millisecond,
		SlotPad: 5 * time.Millisecond,
	}.toModel(4)
	if q.Delta != 7000 || q.D != 21000 || q.Epsilon != 3000 || q.Sigma != 4000 || q.SlotPad != 5000 {
		t.Fatalf("overrides not applied: %+v", q)
	}
	if q.N != 4 {
		t.Fatalf("N: %d", q.N)
	}
}

func TestProposeSeqRegistersBeforeOutcome(t *testing.T) {
	nodes, _, stop := startCluster(t, 3)
	defer stop()
	registered := make(chan uint64, 1)
	seq, err := nodes[0].ProposeSeq([]byte("s"), TotalOrder, Weak, func(s uint64) { registered <- s })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-registered:
		if got != seq {
			t.Fatalf("register saw %d, ProposeSeq returned %d", got, seq)
		}
	default:
		t.Fatalf("register hook did not run before ProposeSeq returned")
	}
	if seq == 0 {
		t.Fatalf("zero sequence")
	}
	// While joining, ProposeSeq reports ErrNotMember.
	hub := NewMemoryHub(HubConfig{})
	defer hub.Close()
	lone, err := NewNode(Config{ID: 0, ClusterSize: 3, Transport: hub.Transport(0), Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	defer lone.Stop()
	lone.Start()
	if _, err := lone.ProposeSeq([]byte("x"), Unordered, Weak, nil); err != ErrNotMember {
		t.Fatalf("lone ProposeSeq: %v", err)
	}
}
