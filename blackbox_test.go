package timewheel

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startBlackboxCluster boots a 3-node in-memory cluster whose node 0
// has the flight recorder armed at dir.
func startBlackboxCluster(t *testing.T, dir string) ([]*Node, func()) {
	t.Helper()
	hub := NewMemoryHub(HubConfig{MaxDelay: 500 * time.Microsecond, Seed: 7})
	nodes := make([]*Node, 3)
	for i := range nodes {
		cfg := Config{
			ID: i, ClusterSize: 3,
			Transport: hub.Transport(i),
			Params:    fastParams(),
		}
		if i == 0 {
			cfg.BlackboxDir = dir
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for _, nd := range nodes {
		nd.Start()
	}
	stop := func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		hub.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, nd := range nodes {
			if v, ok := nd.CurrentView(); !ok || len(v.Members) != 3 {
				all = false
				break
			}
		}
		if all {
			return nodes, stop
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatal("cluster never formed a full view")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBlackboxDump(t *testing.T) {
	dir := t.TempDir()
	nodes, stop := startBlackboxCluster(t, dir)
	defer stop()

	if err := nodes[0].Propose([]byte("x"), TotalOrder, Strong); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	path, err := nodes[0].DumpBlackbox("test")
	if err != nil {
		t.Fatalf("DumpBlackbox: %v", err)
	}
	if filepath.Dir(path) != dir || !strings.HasPrefix(filepath.Base(path), blackboxPrefix) {
		t.Fatalf("bundle path %q not a %s* entry of %q", path, blackboxPrefix, dir)
	}
	for _, f := range []string{"meta.json", "events.json", "metrics.prom", "goroutine.txt", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(path, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}

	var meta blackboxMeta
	b, err := os.ReadFile(filepath.Join(path, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	if meta.Node != 0 || meta.Reason != "test" || !meta.Health.InView {
		t.Fatalf("meta = %+v", meta)
	}

	// The events dump must contain the causally-tagged wire hops the
	// armed ring recorded — a cluster cannot form without decisions.
	var evd blackboxEvents
	b, err = os.ReadFile(filepath.Join(path, "events.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &evd); err != nil {
		t.Fatalf("events.json: %v", err)
	}
	var sends, recvs int
	for _, ev := range evd.Events {
		switch ev.Type {
		case "wire-send":
			sends++
		case "wire-recv":
			recvs++
		}
	}
	if sends == 0 || recvs == 0 {
		t.Fatalf("events.json has %d wire-send and %d wire-recv events, want both > 0", sends, recvs)
	}

	// No temp droppings.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".") {
			t.Errorf("staging residue %s left behind", e.Name())
		}
	}
}

func TestBlackboxRetentionAndRateLimit(t *testing.T) {
	dir := t.TempDir()
	nodes, stop := startBlackboxCluster(t, dir)
	defer stop()

	for i := 0; i < blackboxKeep+3; i++ {
		if _, err := nodes[0].DumpBlackbox("churn"); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != blackboxKeep {
		t.Fatalf("retained %d bundles, want %d", len(ents), blackboxKeep)
	}

	// Automatic triggers are rate-limited: a burst yields one dump.
	before := len(ents)
	for i := 0; i < 5; i++ {
		nodes[0].triggerBlackbox("guard-trip")
	}
	deadline := time.Now().Add(2 * time.Second)
	var after int
	for {
		ents, _ := os.ReadDir(dir)
		after = 0
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), blackboxPrefix) {
				after++
			}
		}
		// The retention cap makes the count stay at blackboxKeep; the
		// newest bundle's reason tells us exactly one trigger fired.
		var trips int
		for _, e := range ents {
			if strings.Contains(e.Name(), "guard-trip") {
				trips++
			}
		}
		if trips == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("guard-trip bundles = %d (dir has %d, had %d), want exactly 1", trips, after, before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Give any (incorrectly) queued extra dumps a moment to appear.
	time.Sleep(100 * time.Millisecond)
	trips := 0
	ents, _ = os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), "guard-trip") {
			trips++
		}
	}
	if trips != 1 {
		t.Fatalf("rate limit let %d guard-trip dumps through", trips)
	}
}

func TestBlackboxDisabledAndHTTPTrigger(t *testing.T) {
	dir := t.TempDir()
	nodes, stop := startBlackboxCluster(t, dir)
	defer stop()

	// Node 1 has no blackbox dir: explicit dumps error, triggers no-op.
	if _, err := nodes[1].DumpBlackbox("x"); err == nil {
		t.Fatal("DumpBlackbox succeeded without a configured directory")
	}
	nodes[1].triggerBlackbox("guard-trip") // must not panic or write

	srv, err := nodes[0].ServeObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/debug/blackbox")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /debug/blackbox = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(base+"/debug/blackbox", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /debug/blackbox = %d (%v)", resp.StatusCode, err)
	}
	if _, err := os.Stat(filepath.Join(out["bundle"], "meta.json")); err != nil {
		t.Fatalf("triggered bundle %q: %v", out["bundle"], err)
	}

	// The auditor rides /healthz: a clean cluster reports zero.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Healthy || h.InvariantViolations != 0 {
		t.Fatalf("healthz = %+v, want healthy with zero violations", h)
	}
}
