// Package timewheel is the public, real-time API of the timewheel group
// communication service (Mishra, Fetzer & Cristian): a group membership
// protocol for the timed asynchronous system model, plus the timewheel
// atomic broadcast it is woven into.
//
// A Node is one team member. Nodes discover each other and maintain a
// consistent membership view (the "group") entirely through the
// protocol's time-slotted join, single-failure and multiple-failure
// elections; in failure-free operation the membership layer sends no
// messages of its own — the broadcast protocol's rotating decision
// messages double as heartbeats.
//
//	hub := timewheel.NewMemoryHub(timewheel.HubConfig{})
//	n, _ := timewheel.NewNode(timewheel.Config{
//		ID: 0, ClusterSize: 3,
//		Transport: hub.Transport(0),
//		OnDeliver: func(d timewheel.Delivery) { fmt.Println(string(d.Payload)) },
//	})
//	n.Start()
//	...
//	n.Propose([]byte("update"), timewheel.TotalOrder, timewheel.Strong)
//
// The real-time runtime assumes the hosts' clocks are synchronized to
// within Params.Epsilon (NTP-grade). The paper's companion fail-aware
// clock synchronization protocol is implemented and exercised in the
// deterministic simulation (internal/csync, internal/node); wiring it
// under the real-time runtime is deployment-specific plumbing.
package timewheel

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"timewheel/internal/adapt"
	"timewheel/internal/broadcast"
	"timewheel/internal/check"
	"timewheel/internal/durable"
	"timewheel/internal/engine"
	"timewheel/internal/fdetect"
	"timewheel/internal/guard"
	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/obs"
	"timewheel/internal/surveil"
	"timewheel/internal/transport"
	"timewheel/internal/wire"
)

// Order selects the ordering semantic of a proposal.
type Order int

const (
	// Unordered delivery (per-sender FIFO not guaranteed).
	Unordered Order = iota
	// TotalOrder delivers updates in the same total order everywhere.
	TotalOrder
	// TimeOrder delivers updates in synchronized-send-time order.
	TimeOrder
)

// Atomicity selects the atomicity semantic of a proposal.
type Atomicity int

const (
	// Weak atomicity: deliver as soon as possible.
	Weak Atomicity = iota
	// Strong atomicity: deliver after a majority provably holds the
	// update and its dependencies.
	Strong
	// Strict atomicity: deliver after every member provably holds them.
	Strict
)

// Delivery is one update handed to the application.
type Delivery struct {
	// Proposer and Seq identify the update (FIFO per proposer).
	Proposer int
	Seq      uint64
	// Ordinal is the update's unique protocol number (0 before ordering
	// on the weak/unordered fast path).
	Ordinal   uint64
	Payload   []byte
	Order     Order
	Atomicity Atomicity
	// SendTime is the proposer's synchronized-clock send time.
	SendTime time.Time
}

// View is a membership view.
type View struct {
	// Seq numbers views; members of a view agree on its contents.
	Seq uint64
	// Members are the team IDs in the view.
	Members []int
}

// Params are the timed-asynchronous model constants. Zero values take
// defaults suitable for a LAN.
type Params struct {
	// Delta is the one-way message time-out delay.
	Delta time.Duration
	// D is the maximum decider interval.
	D time.Duration
	// Epsilon bounds the deviation between the hosts' clocks.
	Epsilon time.Duration
	// Sigma is the scheduling delay bound.
	Sigma time.Duration
	// SlotPad is extra slack on each election time slot.
	SlotPad time.Duration
}

// Transport carries encoded protocol frames between nodes.
type Transport interface {
	Broadcast(data []byte) error
	Unicast(to int, data []byte) error
	SetReceiver(func(data []byte))
	Close() error
}

// BatchMessage is one destination/datagram pair for BatchSender.
type BatchMessage struct {
	To   int
	Data []byte
}

// BatchSender is an optional Transport extension: ship a whole flush of
// per-destination datagrams in as few syscalls as the platform allows
// (one sendmmsg on linux). Data slices are only borrowed for the call.
// Per-destination failures are omissions — counted by the transport,
// never fatal. Nodes use it automatically when the transport provides
// it; NewUDPTransport's transport does.
type BatchSender interface {
	SendBatch(msgs []BatchMessage) error
}

// EnginePool is a shared worker pool for event dispatch: a fixed set of
// shard goroutines that many nodes' engines multiplex onto via
// Config.Pool/PoolShard. One pool per process (or per fabric node)
// replaces N mostly-idle per-group goroutines with GOMAXPROCS busy
// ones; each node's dispatch remains strictly sequential on its shard.
// Close only after every node using the pool has stopped.
type EnginePool struct {
	p *engine.Pool
}

// NewEnginePool starts a pool with the given shard count (<= 0:
// GOMAXPROCS).
func NewEnginePool(shards int) *EnginePool {
	return &EnginePool{p: engine.NewPool(shards, 4096)}
}

// Shards returns the pool's shard count.
func (ep *EnginePool) Shards() int { return ep.p.Shards() }

// Close stops the shard goroutines after draining their queues.
func (ep *EnginePool) Close() { ep.p.Close() }

// Config configures a Node.
type Config struct {
	// ID is this node's team identifier, 0..ClusterSize-1.
	ID int
	// ClusterSize is the total team size N.
	ClusterSize int
	// Transport connects this node to its peers.
	Transport Transport
	// Params tune the timing model (zero: LAN defaults).
	Params Params
	// OnDeliver is called for every delivered update, from the node's
	// event loop: return quickly or hand off.
	OnDeliver func(Delivery)
	// OnViewChange is called on every installed membership view.
	OnViewChange func(View)
	// Termination, when positive, arms the broadcast's termination
	// semantic: OnOutcome fires once per local proposal, either when it
	// is delivered locally or when the window expires undelivered
	// (e.g. the update was purged at a view change).
	Termination time.Duration
	// OnOutcome receives termination reports (event-loop context).
	OnOutcome func(Outcome)
	// Snapshot, when set, provides the application state a decider
	// transfers to joining members; Install receives it on the joining
	// side. Replicated applications need both, or rejoining members
	// start from empty state (deliveries already covered by the
	// snapshot are suppressed on the joiner).
	Snapshot func() []byte
	Install  func([]byte)
	// DataDir, when set, makes the node durable: every delivered update
	// and installed view is appended to a CRC-framed write-ahead log in
	// that directory, application snapshots are written atomically, and
	// after a crash (including kill -9) the node recovers its state
	// from disk before rejoining — warm, fetching only the updates it
	// missed when a current member can serve them from its own log.
	// Recovered deliveries are replayed through Install and OnDeliver
	// before Start. Unset, the node keeps all state in memory and
	// behaves exactly as before. See docs/PERSISTENCE.md.
	DataDir string
	// Fsync selects when log appends reach stable storage: "always",
	// "batched" (default) or "none".
	Fsync string
	// FsyncInterval is the batched-fsync window (default 50ms).
	FsyncInterval time.Duration
	// SnapshotEvery writes a snapshot after that many logged deliveries
	// (default 256). Snapshots capture Config.Snapshot's state; without
	// Snapshot/Install hooks the node is log-only and replays its whole
	// log through OnDeliver on restart.
	SnapshotEvery int
	// Engine selects the event demultiplexer: "loop" (default — the
	// single-threaded event loop the paper's authors chose) or
	// "threaded" (the thread-per-event-type architecture they measured
	// and rejected; kept runnable for comparison).
	Engine string
	// Pool, when set, runs this node's event dispatch on one shard of
	// the shared worker pool instead of a dedicated goroutine — the
	// multi-group fabric's scheduler. Dispatch stays strictly
	// sequential per node (the §3 proofs depend on it); only nodes
	// pinned to different shards run in parallel. Requires Engine ""
	// or "loop". PoolShard selects the shard (taken mod Shards).
	Pool      *EnginePool
	PoolShard int
	// SlotBatch turns on slot-boundary micro-batching: application
	// proposal broadcasts coalesced while handling non-timer events are
	// held and shipped when the next timer-path event or control frame
	// flushes — at the latest at the wheel-slot edge, enforced by a
	// dedicated flush timer. Timer-path events (decisions,
	// no-decisions, expectation handling — all the deadline-bearing
	// traffic fdetect times) flush immediately, so expectation
	// deadlines stay honest; so do control and repair frames (nacks,
	// retransmissions, state, gossip), whose latency the protocol's
	// D-scale repair rate limits assume — held frames ride those
	// flushes for free. Only application payload broadcasts, the
	// highest-volume stream under load, ever wait, and at most one
	// slot. Cuts steady-state datagrams per decision under saturating
	// proposal loads.
	SlotBatch bool
	// Group, when nonzero, tags every outgoing datagram with this
	// group-id (the wire v6 grouped envelope) and accepts only incoming
	// datagrams carrying it — the per-group half of the multi-group
	// fabric (package fabric), which multiplexes many independent
	// timewheel groups over one shared transport. Zero keeps the legacy
	// single-group wire format. Metrics gain a {group="gN"} label.
	Group uint32
	// Guard configures the fail-aware timeliness guard (disabled when
	// zero). See GuardConfig and docs/ROBUSTNESS.md.
	Guard GuardConfig
	// Adaptive configures adaptive fail-aware timeouts (disabled when
	// zero — wire behavior is then identical to a build without the
	// feature). See AdaptiveConfig and docs/ROBUSTNESS.md.
	Adaptive AdaptiveConfig
	// Surveillance configures k-successor surveillance with gossiped
	// suspicions (wire v8): each member watches only K ring successors
	// and failure evidence travels as incarnation-numbered gossip,
	// O(N·K) surveillance traffic instead of all-to-all's O(N²).
	// Disabled when zero — behavior is then identical to the seed
	// protocol. See docs/ROBUSTNESS.md ("Scalable surveillance").
	Surveillance SurveillanceConfig
	// BlackboxDir arms the cluster flight recorder: on a guard trip,
	// self-exclusion, invariant violation, HTTP trigger or explicit
	// DumpBlackbox call, the node writes a self-contained incident
	// bundle (trace ring, metrics, estimator/guard state, profiles)
	// into this directory. Empty with DataDir set defaults to
	// DataDir/blackbox; empty without DataDir disables the recorder.
	// See docs/OBSERVABILITY.md ("Flight recorder").
	BlackboxDir string
	// AuditSample tunes the live invariant auditor's sampled
	// unordered-duplicate check to one in AuditSample deliveries
	// (default 1: every delivery). The monotone §3 checks — FIFO per
	// proposer, total/time-order, view monotonicity, majority views —
	// always run; the auditor itself cannot be disabled and exports
	// timewheel_invariant_violations_total.
	AuditSample int
}

// AdaptiveConfig turns on per-peer timeliness estimation: the failure
// detector's suspicion deadlines follow each link's observed delay
// distribution (clamped between the paper's 2D bound and
// CeilFactor×2D, with hysteresis and flap suppression), and — when the
// guard is enabled — its handler/timer budgets track the host's
// observed scheduling noise instead of static constants. Static
// GuardConfig budgets set explicitly remain explicit overrides. See
// docs/ROBUSTNESS.md ("Adaptive timeouts").
type AdaptiveConfig struct {
	// Enabled turns adaptation on; the remaining fields are ignored
	// when false and default when zero.
	Enabled bool
	// Window is the sample window per estimator (default 128).
	Window int
	// Quantile in (0,1] is the order statistic the bounds derive from
	// (default 0.99).
	Quantile float64
	// Margin multiplies the quantile into a safety bound (default 1.5).
	Margin float64
	// CeilFactor bounds a peer's adaptive suspicion deadline at
	// CeilFactor×2D (default 4) — adaptation stretches deadlines for
	// slow links but crash detection latency stays bounded.
	CeilFactor float64
	// BudgetFloor/BudgetCeil clamp the adaptive guard budgets
	// (defaults 5ms and 2s). The ceiling is also what keeps a
	// chronically degrading host from teaching the guard that its
	// degradation is normal.
	BudgetFloor time.Duration
	BudgetCeil  time.Duration
}

// SurveillanceConfig turns on k-successor surveillance: the member ring
// is hashed onto a ring, each member watches K successors (preferring
// edges the adaptive estimator reports timely), and suspicions/refutes
// travel as duplicate-suppressed gossip relayed to K successors. The
// failure detector switches to partial-view mode: alive-lists are the
// union of direct observation and fresh gossip.
type SurveillanceConfig struct {
	// Enabled turns the subsystem on.
	Enabled bool
	// K is the watch/relay fan-out (default 3).
	K int
}

// AdaptiveStats snapshots the adaptive-timeout estimators. Collected
// from atomics and mutex-protected samplers without touching the event
// loop, so it stays readable during a stall.
type AdaptiveStats struct {
	// Enabled mirrors Config.Adaptive.Enabled.
	Enabled bool
	// Widened/Shrunk count per-peer deadline-grant moves; FlapBoosts
	// counts post-suspicion flap-suppression pins.
	Widened    uint64
	Shrunk     uint64
	FlapBoosts uint64
	// ExpectOverwrites counts failure-detector expectations replaced
	// while still armed (tracked even with adaptation off).
	ExpectOverwrites uint64
	// AppSamples counts application-broadcast (proposal) delay
	// observations fed to the estimator; DeadlineTightenings counts
	// armed surveillance deadlines pulled earlier by one of them.
	AppSamples          uint64
	DeadlineTightenings uint64
	// HandlerBudget/TimerLateBudget are the guard budgets currently in
	// force (adaptive when a source drives them); the Static* fields
	// are what the static configuration would have used.
	HandlerBudget         time.Duration
	TimerLateBudget       time.Duration
	StaticHandlerBudget   time.Duration
	StaticTimerLateBudget time.Duration
	// NoiseHandler/NoiseLateness are the smoothed (EWMA) scheduling-
	// noise estimates.
	NoiseHandler  time.Duration
	NoiseLateness time.Duration
	// PeerDeadlineSpans maps peer ID to its current adaptive deadline
	// grant (the span added to "now" when arming surveillance on it).
	PeerDeadlineSpans map[int]time.Duration
}

// GuardConfig configures the node's local performance-failure detector
// (the fail-awareness the timed asynchronous model demands: a process
// whose own scheduling or clock has failed must know, and must not emit
// late control messages as if it were timely). See docs/ROBUSTNESS.md.
type GuardConfig struct {
	// Enabled turns the guard on; the remaining fields are ignored when
	// false.
	Enabled bool
	// HandlerBudget bounds one event handler's wall-clock time
	// (default 100ms; negative disables the check).
	HandlerBudget time.Duration
	// TimerLateBudget bounds how far past its armed deadline a timer
	// event may be dispatched — covering OS timer slip and queueing
	// behind a stalled handler (default 100ms; negative disables).
	TimerLateBudget time.Duration
	// ClockJumpMax bounds wall-vs-monotonic clock divergence between
	// consecutive events (default 1s; negative disables).
	ClockJumpMax time.Duration
	// TripCount violations within TripWindow trip the guard
	// (defaults 3 within 1s).
	TripCount  int
	TripWindow time.Duration
	// Enforce makes a trip act: the node self-excludes — suppresses
	// outgoing control messages, abandons any in-progress decision, and
	// drops to the join state to rejoin warm. False is observe-only:
	// violations and the late control sends they would have suppressed
	// are only counted (GuardStats.LateSends).
	Enforce bool
}

// GuardStats is a snapshot of the guard's counters plus the engine's
// queue-overflow count. It is collected lock-free from atomics, so it
// is readable even while the node's event goroutine is stalled — which
// is exactly when it is most interesting.
type GuardStats struct {
	Overruns        uint64 // handlers that blew HandlerBudget
	LateTimers      uint64 // timer events dispatched > TimerLateBudget late
	ClockJumps      uint64 // wall-vs-monotonic discontinuities
	SelfExclusions  uint64 // guard trips acted on (Enforce)
	SuppressedSends uint64 // control messages withheld while tripped
	LateSends       uint64 // control messages let through while tripped (observe-only)
	QueueDrops      uint64 // events rejected by the engine's full queue
	Trips           uint64 // armed-to-tripped transitions
	Tripped         bool   // currently tripped (Enforce) or ever tripped (observe)
}

// Outcome is a termination report for a local proposal.
type Outcome struct {
	Seq       uint64
	Delivered bool
}

// ErrNotMember is returned by Propose when the node is not currently a
// group member.
var ErrNotMember = errors.New("timewheel: not a group member")

// ErrStopped is returned after Stop.
var ErrStopped = errors.New("timewheel: node stopped")

// Node is one running timewheel process.
type Node struct {
	cfg    Config
	params model.Params

	bc      *broadcast.Broadcast
	machine *member.Machine
	loop    engine.Engine
	tr      Transport
	guard   *guard.Guard // nil when Config.Guard.Enabled is false
	obs     *nodeObs     // live metrics registry + trace taps (always set)

	// auditor streams every delivery and view install through the live
	// §3 invariant checks (always set); bboxDir/bboxLast drive the
	// flight recorder (bboxDir empty: recorder disabled).
	auditor  *check.Auditor
	bboxDir  string
	bboxLast atomic.Int64

	// Adaptive-timeout estimators (nil when Config.Adaptive.Enabled is
	// false). adaptDelay feeds the failure detector per-peer delay
	// bounds; adaptNoise feeds the guard its budgets and is sampled
	// from handle(). adaptCeil caps the noise samples accepted when no
	// guard supplies an effective budget.
	adaptDelay *adapt.DelayEstimator
	adaptNoise *adapt.NoiseEstimator
	adaptCeil  time.Duration

	// store is the durable store (nil without Config.DataDir);
	// sinceSnap counts logged deliveries since the last snapshot. Both
	// are event-loop confined after NewNode returns.
	store     *durable.Store
	sinceSnap int
	recovery  RecoveryReport

	// Send coalescing (event-loop confined): every control frame
	// produced while handling one event is encoded straight into a
	// per-destination coalescer's reusable buffer; handle() flushes
	// them as one datagram per destination after dispatch — no
	// per-message allocation or syscall on the hot send path.
	coBcast wire.Coalescer
	coUni   map[int]*wire.Coalescer
	coDests []int

	// Batched syscall path (set when the transport is a BatchSender):
	// flushSends ships all pending unicast datagrams through one
	// SendBatch call into batchBuf's reused backing array.
	batch    BatchSender
	batchBuf []BatchMessage

	// Slot-boundary micro-batching (Config.SlotBatch). flushArmed is
	// event-loop confined; flushTimer is guarded by mu (armed from the
	// loop, stopped from Stop). sendErrs counts whole-flush failures
	// for transports that do not track their own send errors;
	// trSendErrs reads the transport's counter when it does.
	flushArmed bool
	// flushUrgent marks that the event being handled emitted a control
	// or repair frame: the handler-end flush runs even in SlotBatch
	// mode (event-loop confined, cleared by flushSends).
	flushUrgent bool
	flushTimer  *time.Timer
	sendErrs   atomic.Uint64
	trSendErrs func() uint64

	mu      sync.Mutex
	timers  map[member.TimerID]*time.Timer
	stopped bool

	// histMu guards the membership history the live invariant checks
	// consume (written from the event goroutine, read from anywhere).
	histMu      sync.Mutex
	views       []ViewEvent
	tenures     []DeciderTenure
	deciderSent uint64 // DecisionsSent at tenure start, for Sent marking
}

// ViewEvent is one view installation in the node's recorded history,
// stamped with the local wall clock.
type ViewEvent struct {
	Seq     uint64
	Members []int
	At      time.Time
}

// DeciderTenure is one interval during which the node held the decider
// role. Open tenures have End equal to the History() snapshot time and
// Open true. Sent records whether the tenure produced a decision; a
// decider-elect relinquishing on a fresher in-flight decision is a
// benign non-sending tenure.
type DeciderTenure struct {
	Start, End time.Time
	Sent       bool
	Open       bool
}

// History snapshots the node's recorded view installations and decider
// tenures — the inputs the live-cluster invariant checks
// (internal/check's Live* validators) need from real running nodes.
func (n *Node) History() (views []ViewEvent, tenures []DeciderTenure) {
	n.histMu.Lock()
	defer n.histMu.Unlock()
	views = append(views, n.views...)
	now := time.Now()
	for _, t := range n.tenures {
		if t.End.IsZero() {
			t.End, t.Open = now, true
		}
		tenures = append(tenures, t)
	}
	return views, tenures
}

// RecoveryReport summarises what a durable node loaded from disk at
// startup.
type RecoveryReport struct {
	// Durable reports whether the node has a data directory at all.
	Durable bool
	// HaveSnapshot reports whether a valid snapshot was loaded.
	HaveSnapshot bool
	// LoggedUpdates and LoggedViews count the valid log records
	// replayed on top of the snapshot.
	LoggedUpdates int
	LoggedViews   int
	// Covered is the contiguous ordinal prefix the recovered state
	// includes — what the node advertises for a delta rejoin.
	Covered uint64
	// Lineage is the ordinal space Covered belongs to.
	Lineage uint64
	// TornTail reports that a torn final record was truncated away (the
	// expected shape after a crash mid-append).
	TornTail bool
	// Discarded notes data that failed validation; empty means a fully
	// clean recovery.
	Discarded []string
}

func (p Params) toModel(n int) model.Params {
	mp := model.DefaultParams(n)
	if p.Delta > 0 {
		mp.Delta = model.FromStd(p.Delta)
	}
	if p.D > 0 {
		mp.D = model.FromStd(p.D)
	}
	if p.Epsilon > 0 {
		mp.Epsilon = model.FromStd(p.Epsilon)
	}
	if p.Sigma > 0 {
		mp.Sigma = model.FromStd(p.Sigma)
	}
	if p.SlotPad > 0 {
		mp.SlotPad = model.FromStd(p.SlotPad)
	}
	return mp
}

// NewNode builds a node; call Start to join the team.
func NewNode(cfg Config) (*Node, error) {
	if cfg.ClusterSize < 1 {
		return nil, fmt.Errorf("timewheel: ClusterSize must be >= 1")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.ClusterSize {
		return nil, fmt.Errorf("timewheel: ID %d out of range [0,%d)", cfg.ID, cfg.ClusterSize)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("timewheel: Transport is required")
	}
	mp := cfg.Params.toModel(cfg.ClusterSize)
	if err := mp.Validate(); err != nil {
		return nil, err
	}

	n := &Node{
		cfg:    cfg,
		params: mp,
		tr:     cfg.Transport,
		timers: make(map[member.TimerID]*time.Timer),
		coUni:  make(map[int]*wire.Coalescer),
	}
	n.coBcast.SetGroup(cfg.Group)
	n.batch, _ = cfg.Transport.(BatchSender)
	if se, ok := cfg.Transport.(interface{ SendErrors() uint64 }); ok {
		n.trSendErrs = se.SendErrors
	}
	n.obs = newNodeObs(n)
	if n.bboxDir = cfg.BlackboxDir; n.bboxDir == "" && cfg.DataDir != "" {
		n.bboxDir = filepath.Join(cfg.DataDir, "blackbox")
	}
	if n.bboxDir != "" {
		// A flight recorder without a populated trace ring is useless:
		// arming it turns ring recording on for the process lifetime
		// (same one-ring-write cost as having /debug/events attached).
		tracer.EnableRing()
	}
	n.auditor = check.NewAuditor(check.AuditorConfig{
		N:      cfg.ClusterSize,
		Sample: cfg.AuditSample,
		OnViolation: func(inv, detail string) {
			n.obs.emit(obs.EvInvariant, invariantCode(inv), 0)
			n.triggerBlackbox("invariant-" + inv)
		},
	})
	var rec *durable.Recovery
	if cfg.DataDir != "" {
		policy, err := durable.ParseFsyncPolicy(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		n.store, rec, err = durable.Open(durable.Options{
			Dir:           cfg.DataDir,
			Policy:        policy,
			BatchInterval: cfg.FsyncInterval,
			ObserveSync: func(d time.Duration) {
				n.obs.fsyncLat.ObserveDuration(d)
				n.obs.emit(obs.EvWALSync, int64(d), 0)
			},
			ObserveSnapshot: func(bytes int) {
				n.obs.snapBytes.Observe(int64(bytes))
				n.obs.emit(obs.EvSnapshot, int64(bytes), 0)
			},
			ObserveReplay: func(records int) {
				n.obs.replaySize.Observe(int64(records))
			},
		})
		if err != nil {
			return nil, err
		}
	}
	snapEvery := cfg.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 256
	}
	bcfg := broadcast.Config{
		Snapshot: cfg.Snapshot,
		Install:  cfg.Install,
		OnDeliver: func(d broadcast.Delivery) {
			if lag := time.Now().UnixMicro() - int64(d.SendTS); lag > 0 {
				n.obs.deliveryLag.Observe(lag * int64(time.Microsecond))
			}
			n.auditor.ObserveDeliver(d.ID, d.Ordinal, d.Sem, d.SendTS)
			n.obs.emit(obs.EvDeliver, int64(d.Ordinal),
				obs.PackProposalID(uint32(d.ID.Proposer), d.ID.Seq))
			if n.store != nil {
				n.store.AppendUpdate(durable.UpdateRecord{ //nolint:errcheck
					ID: d.ID, Ordinal: d.Ordinal, Sem: d.Sem, SendTS: d.SendTS, Payload: d.Payload,
				})
			}
			if cfg.OnDeliver != nil {
				cfg.OnDeliver(toDelivery(d))
			}
			if n.store != nil {
				if n.sinceSnap++; n.sinceSnap >= snapEvery {
					n.writeSnapshot()
				}
			}
		},
	}
	if n.store != nil {
		if cfg.Install != nil {
			bcfg.Install = func(b []byte) {
				cfg.Install(b)
				// A full transfer rebases the application state: snapshot
				// it with the matching delivery image so the log restarts
				// clean behind it.
				n.writeSnapshot()
			}
		}
		bcfg.OnLineage = func(lin model.GroupSeq) {
			// A lineage boundary restarts the ordinal space: mark it in
			// the log (recovery then knows post-boundary ordinals are
			// incomparable with the snapshot's) and drop the replay tail.
			n.store.AppendView(durable.ViewRecord{Lineage: lin, Ordinal: oal.None}) //nolint:errcheck
			n.store.ResetTail(0)
		}
		bcfg.ReplaySince = func(since oal.Ordinal) ([]wire.ReplayEntry, bool) {
			recs, ok := n.store.ReplaySince(since)
			if !ok {
				return nil, false
			}
			out := make([]wire.ReplayEntry, 0, len(recs))
			for _, u := range recs {
				out = append(out, wire.ReplayEntry{
					ID: u.ID, Ordinal: u.Ordinal, Sem: u.Sem, SendTS: u.SendTS, Payload: u.Payload,
				})
			}
			return out, true
		}
	}
	if cfg.Termination > 0 {
		bcfg.TerminationAfter = model.FromStd(cfg.Termination)
		bcfg.OnOutcome = func(o broadcast.Outcome) {
			if cfg.OnOutcome != nil {
				cfg.OnOutcome(Outcome{Seq: o.ID.Seq, Delivered: o.Delivered})
			}
		}
	}
	n.bc = broadcast.New(model.ProcessID(cfg.ID), mp, bcfg)
	var scfg surveil.Config
	if cfg.Surveillance.Enabled {
		scfg.K = cfg.Surveillance.K
		if scfg.K <= 0 {
			scfg.K = 3
		}
	}
	n.machine = member.New(model.ProcessID(cfg.ID), mp, member.Config{
		Surveillance: scfg,
		Hooks: member.Hooks{
			StateChange: func(from, to member.State, _ model.Time) {
				n.obs.onStateChange(from, to)
				if to == member.StateJoin && from != member.StateJoin {
					// Dropping back to join restarts the delivery stream
					// (the broadcast layer resets; the join-time transfer
					// re-establishes it): the auditor's ordering floors
					// restart with it.
					n.auditor.ResetIncarnation()
				}
			},
			Suspicion: func(suspect model.ProcessID, deadline, now model.Time) {
				n.obs.onSuspicion(suspect, deadline, now)
			},
			ViewChange: func(g model.Group, _ model.Time) {
				n.obs.onViewChange(g)
				n.auditor.ObserveView(uint64(g.Seq), len(g.Members))
				if n.store != nil {
					// Membership descriptors occupy ordinals; logging the
					// view with its ordinal lets recovery count it toward
					// contiguous coverage.
					n.store.AppendView(durable.ViewRecord{ //nolint:errcheck
						Seq:     g.Seq,
						Members: append([]model.ProcessID(nil), g.Members...),
						Ordinal: n.bc.MembershipOrdinal(g.Seq),
						Lineage: n.bc.Lineage(),
					})
				}
				ve := ViewEvent{Seq: uint64(g.Seq), At: time.Now()}
				for _, m := range g.Members {
					ve.Members = append(ve.Members, int(m))
				}
				n.histMu.Lock()
				n.views = append(n.views, ve)
				n.histMu.Unlock()
				if cfg.OnViewChange != nil {
					cfg.OnViewChange(View{Seq: ve.Seq, Members: ve.Members})
				}
			},
			Decider: func(isDecider bool, _ model.Time) {
				at := time.Now()
				sent := false
				n.histMu.Lock()
				if isDecider {
					n.tenures = append(n.tenures, DeciderTenure{Start: at})
					n.deciderSent = n.machine.Stats().DecisionsSent
				} else if k := len(n.tenures) - 1; k >= 0 && n.tenures[k].End.IsZero() {
					n.tenures[k].End = at
					sent = n.machine.Stats().DecisionsSent > n.deciderSent
					n.tenures[k].Sent = sent
				}
				n.histMu.Unlock()
				n.obs.onDecider(isDecider, sent)
			},
			WireEvent: func(dir member.WireDir, kind wire.Kind, peer model.ProcessID, ctx wire.Causal, _ model.Time) {
				n.obs.onWireEvent(dir, kind, peer, ctx)
			},
		},
	}, (*nodeEnv)(n), n.bc)
	if rec != nil {
		n.seedRecovery(rec)
	}
	// Expectation-overwrite accounting is observability, not adaptation:
	// wired whether or not Adaptive is on.
	n.machine.Detector().OnExpectOverwrite(func(old, next model.ProcessID) {
		n.obs.emit(obs.EvExpectOverwrite, int64(old), int64(next))
	})
	if cfg.Adaptive.Enabled {
		acfg := adapt.Config{
			Window:   cfg.Adaptive.Window,
			Quantile: cfg.Adaptive.Quantile,
			Margin:   cfg.Adaptive.Margin,
		}
		n.adaptDelay = adapt.NewDelayEstimator(acfg)
		n.adaptNoise = adapt.NewNoiseEstimator(acfg, cfg.Adaptive.BudgetFloor, cfg.Adaptive.BudgetCeil)
		if n.adaptCeil = cfg.Adaptive.BudgetCeil; n.adaptCeil <= 0 {
			n.adaptCeil = 2 * time.Second
		}
		n.machine.Detector().EnableAdaptive(
			adaptDelayAdapter{n.adaptDelay},
			fdetect.AdaptiveConfig{CeilFactor: cfg.Adaptive.CeilFactor},
		)
	}
	if cfg.Guard.Enabled {
		gcfg := guard.Config{
			HandlerBudget:   cfg.Guard.HandlerBudget,
			TimerLateBudget: cfg.Guard.TimerLateBudget,
			ClockJumpMax:    cfg.Guard.ClockJumpMax,
			TripCount:       cfg.Guard.TripCount,
			TripWindow:      cfg.Guard.TripWindow,
			Enforce:         cfg.Guard.Enforce,
		}
		if n.adaptNoise != nil {
			gcfg.Budgets = n.adaptNoise
		}
		n.guard = guard.New(gcfg)
		n.guard.OnTrip(func() {
			n.obs.emit(obs.EvGuardTrip, 0, 0)
			n.triggerBlackbox("guard-trip")
		})
	}
	n.obs.registerAdaptive(n)

	switch {
	case cfg.Pool != nil:
		if cfg.Engine != "" && cfg.Engine != "loop" {
			return nil, fmt.Errorf("timewheel: Engine %q cannot combine with Pool (sharded dispatch is loop-semantics)", cfg.Engine)
		}
		n.loop = cfg.Pool.p.Engine(cfg.PoolShard, n.handle)
	case cfg.Engine == "" || cfg.Engine == "loop":
		n.loop = engine.NewEventLoop(n.handle, 4096)
	case cfg.Engine == "threaded":
		n.loop = engine.NewThreaded(n.handle, 512)
	default:
		return nil, fmt.Errorf("timewheel: unknown engine %q (want \"loop\" or \"threaded\")", cfg.Engine)
	}
	recvFrame := func(data []byte) {
		msg, err := wire.Decode(data)
		if err != nil {
			n.obs.recvDrops.Inc()
			return // corrupt frame: drop, as UDP would
		}
		hdr := msg.Hdr()
		n.obs.onRecv(hdr.From, hdr.SendTS)
		// A full queue drops the message — an in-model omission failure,
		// counted in GuardStats.QueueDrops — rather than blocking the
		// transport's receive goroutine behind a slow protocol core.
		if !n.post(engine.Event{Type: engine.TypeOfMessage(msg), Msg: msg}) {
			n.obs.recvDrops.Inc()
			n.obs.emit(obs.EvQueueDrop, int64(msg.Kind()), 0)
		}
	}
	cfg.Transport.SetReceiver(func(data []byte) {
		if wire.IsGrouped(data) {
			// A group-tagged datagram (wire v6). A fabric demux
			// normally routes these and delivers bare sub-frames, but a
			// grouped node on a plain transport must still filter: only
			// its own group's frames may enter the engine.
			if gid, ok := wire.GroupOf(data); !ok || gid != cfg.Group {
				n.obs.recvDrops.Inc()
				return
			}
			if wire.SplitGrouped(data, recvFrame) != nil {
				n.obs.recvDrops.Inc() // malformed envelope
			}
			return
		}
		if wire.IsCoalesced(data) {
			// A coalesced datagram: each sub-frame decodes (and fails
			// CRC) independently. Decode copies what it keeps, so the
			// borrowed transport buffer is released on return.
			if wire.SplitCoalesced(data, recvFrame) != nil {
				n.obs.recvDrops.Inc() // malformed envelope
			}
			return
		}
		recvFrame(data)
	})
	registerExpvar(n)
	return n, nil
}

// toDelivery converts a broadcast-layer delivery to the public type.
func toDelivery(d broadcast.Delivery) Delivery {
	return Delivery{
		Proposer:  int(d.ID.Proposer),
		Seq:       d.ID.Seq,
		Ordinal:   uint64(d.Ordinal),
		Payload:   d.Payload,
		Order:     Order(d.Sem.Order),
		Atomicity: Atomicity(d.Sem.Atomicity),
		SendTime:  time.UnixMicro(int64(d.SendTS)),
	}
}

// writeSnapshot persists the application state with the broadcast
// layer's matching delivery image and prunes the log behind it. Without
// Snapshot/Install hooks the node stays log-only: there is no state the
// snapshot could capture, so the log must keep every delivery.
func (n *Node) writeSnapshot() {
	n.sinceSnap = 0
	if n.store == nil || n.cfg.Snapshot == nil {
		return
	}
	img := n.bc.SnapshotImage()
	meta := durable.SnapshotMeta{Lineage: img.Lineage, Covered: img.Covered, SettledTS: img.SettledTS}
	for _, x := range img.Extra {
		meta.Extra = append(meta.Extra, durable.ExtraEntry{ID: x.ID, Ordinal: x.Ordinal})
	}
	for _, f := range img.FIFO {
		meta.FIFO = append(meta.FIFO, durable.FIFOCursor{Proposer: f.Proposer, Next: f.Seq})
	}
	n.store.WriteSnapshot(meta, n.cfg.Snapshot()) //nolint:errcheck // best-effort; log retains the tail
}

// seedRecovery rebuilds the application and delivery state from what
// the durable store recovered, before the protocol starts: the snapshot
// is installed as the base, the logged updates are replayed through
// OnDeliver on top, and the broadcast layer is seeded so nothing
// recovered is ever re-applied — and so the node's join message
// advertises the recovered coverage for a delta rejoin.
func (n *Node) seedRecovery(rec *durable.Recovery) {
	n.recovery = RecoveryReport{
		Durable:       true,
		HaveSnapshot:  rec.HaveSnapshot,
		LoggedUpdates: len(rec.Updates),
		LoggedViews:   len(rec.Views),
		Covered:       uint64(rec.AdvertisedCoverage()),
		Lineage:       uint64(rec.Lineage()),
		TornTail:      rec.TornTail,
		Discarded:     rec.Discarded,
	}
	if rec.Empty() {
		return
	}
	if rec.HaveSnapshot && n.cfg.Install != nil {
		n.cfg.Install(rec.AppState)
	}
	img := broadcast.Image{
		Lineage:   rec.Lineage(),
		Covered:   rec.AdvertisedCoverage(),
		SettledTS: rec.Meta.SettledTS,
	}
	for _, x := range rec.Meta.Extra {
		img.Extra = append(img.Extra, broadcast.ImageExtra{ID: x.ID, Ordinal: x.Ordinal})
	}
	for _, u := range rec.Updates {
		if n.cfg.OnDeliver != nil {
			n.cfg.OnDeliver(toDelivery(broadcast.Delivery{
				ID: u.ID, Ordinal: u.Ordinal, Payload: u.Payload, Sem: u.Sem, SendTS: u.SendTS,
			}))
		}
		img.Extra = append(img.Extra, broadcast.ImageExtra{ID: u.ID, Ordinal: u.Ordinal})
	}
	for _, f := range rec.Meta.FIFO {
		img.FIFO = append(img.FIFO, wire.FIFOEntry{Proposer: f.Proposer, Seq: f.Next})
	}
	n.bc.SeedRecovered(img)
}

// Recovery returns the startup recovery report; Durable is false when
// the node has no data directory.
func (n *Node) Recovery() RecoveryReport { return n.recovery }

// ErrNotDurable is returned by Checkpoint on a node without a data
// directory or without a Snapshot hook (nothing to checkpoint).
var ErrNotDurable = errors.New("timewheel: node is not durable")

// Checkpoint forces a durable snapshot of the application state right
// now, independent of the SnapshotEvery cadence, and syncs the log. It
// round-trips through the event loop so the image is consistent with
// the delivery stream. The group-move rebalancer (fabric.MoveGroup)
// uses it to fix a transfer base on the source replica; everything
// delivered after the checkpoint reaches the destination as a replay
// delta through the normal rejoin machinery.
func (n *Node) Checkpoint() error {
	if n.store == nil || n.cfg.Snapshot == nil {
		return ErrNotDurable
	}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	n.mu.Unlock()
	errc := make(chan error, 1)
	n.post(engine.Event{Type: engine.EvCommand, Cmd: func() {
		n.writeSnapshot()
		errc <- n.store.Sync()
	}})
	select {
	case err := <-errc:
		return err
	case <-time.After(5 * time.Second):
		return ErrStopped
	}
}

// handle runs inside the event loop; all protocol state is confined to
// it. With a guard configured, every event is bracketed by the
// performance-failure checks: clock discontinuity and timer lateness
// before dispatch, handler overrun after, and — when a sustained
// violation has tripped the guard under Enforce — self-exclusion.
func (n *Node) handle(ev engine.Event) {
	start := time.Now()
	if !ev.Due.IsZero() {
		if late := start.Sub(ev.Due); late > 0 {
			n.obs.timerLateness.ObserveDuration(late)
		}
	}
	g := n.guard
	if g != nil {
		g.NoteClock(start)
		g.NoteTimerFired(start, ev.Due)
	}
	n.dispatch(ev)
	// Slot-boundary micro-batching: timer-path events (Due set) carry
	// the deadline-bearing traffic and always flush, as does any event
	// that emitted a control or repair frame (flushUrgent); only
	// application proposal broadcasts are held for the next flush —
	// bounded by the slot-edge flush timer, so nothing crosses a slot
	// boundary.
	if !n.cfg.SlotBatch || !ev.Due.IsZero() || n.flushUrgent {
		n.flushSends()
	} else if n.coBcast.Count() > 0 || len(n.coDests) > 0 {
		n.obs.slotbatchHeld.Inc()
		n.armFlushTimer()
	}
	end := time.Now()
	n.obs.handlerLatency.ObserveDuration(end.Sub(start))
	if g != nil {
		g.NoteHandlerDone(start, end)
		if g.Tripped() && g.Config().Enforce {
			n.selfExclude()
		}
	}
	n.sampleNoise(ev, start, end)
}

// sampleNoise feeds the scheduling-noise estimator from the event just
// handled: timer lateness and queue wait into the lateness sampler,
// handler duration into the handler sampler. Samples beyond the budget
// currently in force are excluded — a genuine stall must trip the
// guard, not teach the estimator that stalls are normal (chronic
// degradation is instead bounded by the estimator's ceiling).
func (n *Node) sampleNoise(ev engine.Event, start, end time.Time) {
	ne := n.adaptNoise
	if ne == nil {
		return
	}
	handlerLimit, latenessLimit := n.adaptCeil, n.adaptCeil
	if n.guard != nil {
		handlerLimit, latenessLimit = n.guard.EffectiveBudgets()
	}
	if !ev.Due.IsZero() {
		late := start.Sub(ev.Due)
		if late < 0 {
			late = 0
		}
		if late <= latenessLimit {
			ne.ObserveLateness(late)
		}
	} else if !ev.Posted.IsZero() {
		// Non-timer events have no deadline; their queue wait is the
		// congestion half of the same scheduling-noise signal.
		if wait := start.Sub(ev.Posted); wait >= 0 && wait <= latenessLimit {
			ne.ObserveLateness(wait)
		}
	}
	if dur := end.Sub(start); dur <= handlerLimit {
		ne.ObserveHandler(dur)
	}
}

func (n *Node) dispatch(ev engine.Event) {
	switch {
	case ev.Msg != nil:
		n.machine.OnMessage(ev.Msg)
	case ev.Cmd != nil:
		ev.Cmd()
	default:
		n.machine.OnTimer(ev.Timer)
	}
}

// selfExclude acts on a guard trip (event-goroutine context): the
// machine drops to the join state via the warm-rejoin path — its
// broadcast image survives the reset, so the join advertises real
// coverage and a current member can serve a delta instead of a full
// state transfer — and the guard is rearmed with a grace window so the
// backlog of stale lateness drained right after the stall does not
// immediately re-trip it.
func (n *Node) selfExclude() {
	if n.machine.State() != member.StateJoin {
		n.machine.SelfExclude()
		n.guard.NoteSelfExclusion()
		n.obs.emit(obs.EvSelfExclude, 0, 0)
		n.triggerBlackbox("self-exclude")
	}
	n.guard.Rearm(time.Now())
	n.obs.emit(obs.EvGuardRearm, 0, 0)
}

// post hands an event to the engine; false means it was dropped (node
// stopped, or queue full — the latter counted in GuardStats.QueueDrops).
func (n *Node) post(ev engine.Event) bool {
	if n.adaptNoise != nil && ev.Posted.IsZero() {
		ev.Posted = time.Now() // queue-wait sampling (adaptive mode only)
	}
	n.mu.Lock()
	stopped := n.stopped
	n.mu.Unlock()
	if stopped {
		return false
	}
	return n.loop.Post(ev)
}

// Start begins protocol execution: the node enters the join state and
// sends join messages in its time slots.
func (n *Node) Start() {
	n.post(engine.Event{Type: engine.EvCommand, Cmd: n.machine.Start})
}

// Stop shuts the node down.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	for _, t := range n.timers {
		t.Stop()
	}
	if n.flushTimer != nil {
		n.flushTimer.Stop()
	}
	n.mu.Unlock()
	n.loop.Stop()
	n.tr.Close()
	if n.store != nil {
		n.store.Close() //nolint:errcheck // final flush; nothing to do on error
	}
	unregisterExpvar(n)
}

// Propose broadcasts an update with the given semantics. It blocks until
// the node's event loop has accepted (or refused) the proposal.
func (n *Node) Propose(payload []byte, o Order, a Atomicity) error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	n.mu.Unlock()
	errc := make(chan error, 1)
	n.post(engine.Event{Type: engine.EvCommand, Cmd: func() {
		p := n.machine.Propose(payload, oal.Semantics{Order: oal.Order(o), Atomicity: oal.Atomicity(a)})
		if p == nil {
			errc <- ErrNotMember
		} else {
			errc <- nil
		}
	}})
	select {
	case err := <-errc:
		return err
	case <-time.After(5 * time.Second):
		return ErrStopped
	}
}

// ProposeSeq broadcasts an update like Propose and additionally reports
// the per-proposer sequence number assigned to it — the key by which
// termination outcomes (Config.OnOutcome) identify it. register, when
// non-nil, runs on the node's event loop after the sequence is known and
// strictly before any outcome for it can fire, closing the registration
// race for request/response layers (see package rsm).
func (n *Node) ProposeSeq(payload []byte, o Order, a Atomicity, register func(seq uint64)) (uint64, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return 0, ErrStopped
	}
	n.mu.Unlock()
	type resp struct {
		seq uint64
		err error
	}
	ch := make(chan resp, 1)
	n.post(engine.Event{Type: engine.EvCommand, Cmd: func() {
		p := n.machine.Propose(payload, oal.Semantics{Order: oal.Order(o), Atomicity: oal.Atomicity(a)})
		if p == nil {
			ch <- resp{err: ErrNotMember}
			return
		}
		if register != nil {
			register(p.ID.Seq)
		}
		ch <- resp{seq: p.ID.Seq}
	}})
	select {
	case r := <-ch:
		return r.seq, r.err
	case <-time.After(5 * time.Second):
		return 0, ErrStopped
	}
}

// CurrentView returns the node's membership view; ok is false while the
// node is (re)joining.
func (n *Node) CurrentView() (View, bool) {
	type resp struct {
		v  View
		ok bool
	}
	ch := make(chan resp, 1)
	n.post(engine.Event{Type: engine.EvCommand, Cmd: func() {
		g := n.machine.Group()
		ok := n.machine.HaveGroup() && n.machine.State() != member.StateJoin
		v := View{Seq: uint64(g.Seq)}
		for _, m := range g.Members {
			v.Members = append(v.Members, int(m))
		}
		ch <- resp{v, ok}
	}})
	select {
	case r := <-ch:
		return r.v, r.ok
	case <-time.After(5 * time.Second):
		return View{}, false
	}
}

// UpToDate reports the paper's fail-awareness predicate: whether this
// process currently knows its view to be up to date.
func (n *Node) UpToDate() bool {
	ch := make(chan bool, 1)
	n.post(engine.Event{Type: engine.EvCommand, Cmd: func() { ch <- n.machine.UpToDate() }})
	select {
	case v := <-ch:
		return v
	case <-time.After(5 * time.Second):
		return false
	}
}

// Metrics is a point-in-time snapshot of a node's protocol counters.
type Metrics struct {
	// Membership-layer counters.
	ViewChanges       uint64
	SingleElections   uint64
	ReconfigElections uint64
	WrongSuspicions   uint64
	NoDecisionsSent   uint64
	ReconfigsSent     uint64
	JoinsSent         uint64
	DecisionsSent     uint64
	Admissions        uint64
	SelfExclusions    uint64
	// Broadcast-layer counters.
	Proposed      uint64
	Delivered     uint64
	DeliveredFast uint64
	Purged        uint64
	Retransmits   uint64
	// State-transfer counters: full snapshots vs. rejoin deltas served
	// to joiners, and replayed delta entries applied on this node.
	StateFulls    uint64
	StateDeltas   uint64
	ReplayApplied uint64
}

// Metrics returns a snapshot of the node's protocol counters.
func (n *Node) Metrics() Metrics {
	ch := make(chan Metrics, 1)
	n.post(engine.Event{Type: engine.EvCommand, Cmd: func() {
		ms := n.machine.Stats()
		bs := n.bc.Stats()
		ch <- Metrics{
			ViewChanges:       ms.ViewChanges,
			SingleElections:   ms.SingleElections,
			ReconfigElections: ms.ReconfigElections,
			WrongSuspicions:   ms.WrongSuspicions,
			NoDecisionsSent:   ms.NDsSent,
			ReconfigsSent:     ms.ReconfigsSent,
			JoinsSent:         ms.JoinsSent,
			DecisionsSent:     ms.DecisionsSent,
			Admissions:        ms.Admissions,
			SelfExclusions:    ms.SelfExclusions,
			Proposed:          bs.Proposed,
			Delivered:         bs.Delivered,
			DeliveredFast:     bs.DeliveredFast,
			Purged:            bs.Purged,
			Retransmits:       bs.Retransmits,
			StateFulls:        bs.StateFulls,
			StateDeltas:       bs.StateDeltas,
			ReplayApplied:     bs.ReplayApplied,
		}
	}})
	select {
	case m := <-ch:
		return m
	case <-time.After(5 * time.Second):
		return Metrics{}
	}
}

// GuardStats snapshots the timeliness guard's counters plus the
// engine's queue-overflow count. Unlike Metrics, it does not round-trip
// through the event loop: it reads atomics, so it stays available while
// the event goroutine is stalled — the condition it exists to observe.
func (n *Node) GuardStats() GuardStats {
	var s GuardStats
	if n.guard != nil {
		gs := n.guard.Stats()
		s = GuardStats{
			Overruns:        gs.Overruns,
			LateTimers:      gs.LateTimers,
			ClockJumps:      gs.ClockJumps,
			SelfExclusions:  gs.SelfExclusions,
			SuppressedSends: gs.SuppressedSends,
			LateSends:       gs.LateSends,
			Trips:           gs.Trips,
			Tripped:         gs.Tripped,
		}
	}
	s.QueueDrops = n.loop.Dropped()
	return s
}

// adaptDelayAdapter lifts adapt.DelayEstimator (time.Duration, int
// peers) to fdetect.DelayEstimator (model units, ProcessID peers).
type adaptDelayAdapter struct{ est *adapt.DelayEstimator }

func (a adaptDelayAdapter) Observe(peer model.ProcessID, d model.Duration) {
	a.est.Observe(int(peer), d.Std())
}

func (a adaptDelayAdapter) Bound(peer model.ProcessID) (model.Duration, bool) {
	b, ok := a.est.Bound(int(peer))
	return model.FromStd(b), ok
}

// AdaptiveStats snapshots the adaptive-timeout layer. Like GuardStats
// it reads atomics and samplers directly — no event-loop round-trip —
// so it stays available mid-stall. With Adaptive disabled only the
// ExpectOverwrites counter is live.
func (n *Node) AdaptiveStats() AdaptiveStats {
	det := n.machine.Detector()
	as := det.AdaptStats()
	s := AdaptiveStats{
		Enabled:          n.cfg.Adaptive.Enabled,
		Widened:          as.Widened,
		Shrunk:           as.Shrunk,
		FlapBoosts:       as.FlapBoosts,
		ExpectOverwrites: as.ExpectOverwrites,

		AppSamples:          as.AppSamples,
		DeadlineTightenings: as.DeadlineTightenings,
	}
	if n.guard != nil {
		s.HandlerBudget, s.TimerLateBudget = n.guard.EffectiveBudgets()
		gc := n.guard.Config()
		s.StaticHandlerBudget, s.StaticTimerLateBudget = gc.HandlerBudget, gc.TimerLateBudget
	}
	if n.adaptNoise != nil {
		s.NoiseHandler = n.adaptNoise.HandlerEstimate()
		s.NoiseLateness = n.adaptNoise.LatenessEstimate()
	}
	if n.adaptDelay != nil {
		s.PeerDeadlineSpans = make(map[int]time.Duration)
		for _, p := range n.adaptDelay.Peers() {
			if span := det.DeadlineSpan(model.ProcessID(p)); span > 0 {
				s.PeerDeadlineSpans[p] = span.Std()
			}
		}
	}
	return s
}

// InjectStall occupies the node's event goroutine for d — a synthetic
// scheduling stall (the live analogue of a GC pause or a preempted
// process) for tests and chaos runs. It returns immediately; the stall
// happens when the event is dispatched.
func (n *Node) InjectStall(d time.Duration) {
	n.post(engine.Event{Type: engine.EvCommand, Cmd: func() { time.Sleep(d) }})
}

// StateName returns the group creator's current state (join,
// failure-free, wrong-suspicion, 1-failure-receive, 1-failure-send,
// n-failure) — mainly for monitoring.
func (n *Node) StateName() string {
	ch := make(chan string, 1)
	n.post(engine.Event{Type: engine.EvCommand, Cmd: func() { ch <- n.machine.State().String() }})
	select {
	case s := <-ch:
		return s
	case <-time.After(5 * time.Second):
		return "stopped"
	}
}

// nodeEnv adapts Node to member.Env. It runs inside the event loop.
type nodeEnv Node

func (e *nodeEnv) Now() model.Time { return model.Time(time.Now().UnixMicro()) }

func (e *nodeEnv) Broadcast(m wire.Message) {
	n := (*Node)(e)
	if n.guard != nil && !n.guard.AllowControlSend() {
		return // tripped under Enforce: a fail-aware process goes silent
	}
	n.obs.sends.Inc()
	if m.Kind() != wire.KindProposal {
		// Control frames keep per-event latency (SlotBatch holds only
		// application payload broadcasts): flush at handler end, with
		// whatever was held riding along.
		n.flushUrgent = true
	}
	if !n.coBcast.TryAppend(m) {
		n.flushBroadcast()
		n.coBcast.TryAppend(m)
	}
}

func (e *nodeEnv) Unicast(to model.ProcessID, m wire.Message) {
	n := (*Node)(e)
	if n.guard != nil && !n.guard.AllowControlSend() {
		return
	}
	n.obs.sends.Inc()
	// Unicasts are repair and transfer traffic (retransmissions, state,
	// served baselines) — never held; see Broadcast.
	n.flushUrgent = true
	dst := int(to)
	c := n.coUni[dst]
	if c == nil {
		c = new(wire.Coalescer)
		c.SetGroup(n.cfg.Group)
		n.coUni[dst] = c
	}
	if c.Count() == 0 {
		n.coDests = append(n.coDests, dst)
	}
	if !c.TryAppend(m) {
		if d := c.Datagram(); d != nil {
			n.tr.Unicast(dst, d) //nolint:errcheck // omission failures are in-model
		}
		c.Reset()
		c.TryAppend(m)
	}
}

// flushBroadcast sends the pending broadcast datagram, encoded once and
// fanned out by the transport with no per-peer copies.
func (n *Node) flushBroadcast() {
	if d := n.coBcast.Datagram(); d != nil {
		// Omission failures are in-model; count them for /metrics when
		// the transport does not track its own.
		if err := n.tr.Broadcast(d); err != nil && n.trSendErrs == nil {
			n.sendErrs.Add(1)
		}
	}
	n.coBcast.Reset()
}

// flushSends ships every datagram coalesced since the last flush: one
// broadcast, then one datagram per unicast destination — through a
// single SendBatch syscall when the transport can batch and more than
// one destination is pending.
func (n *Node) flushSends() {
	n.flushUrgent = false
	n.flushBroadcast()
	if len(n.coDests) == 0 {
		return
	}
	if n.batch != nil && len(n.coDests) > 1 {
		msgs := n.batchBuf[:0]
		for _, dst := range n.coDests {
			c := n.coUni[dst]
			if d := c.Datagram(); d != nil {
				msgs = append(msgs, BatchMessage{To: dst, Data: d})
			}
		}
		if len(msgs) > 0 {
			if err := n.batch.SendBatch(msgs); err != nil && n.trSendErrs == nil {
				n.sendErrs.Add(uint64(len(msgs)))
			}
		}
		// The coalescers' buffers were only borrowed by SendBatch;
		// reset them after the call returns.
		for _, dst := range n.coDests {
			n.coUni[dst].Reset()
		}
		n.batchBuf = msgs[:0]
		n.coDests = n.coDests[:0]
		return
	}
	for _, dst := range n.coDests {
		c := n.coUni[dst]
		if d := c.Datagram(); d != nil {
			if err := n.tr.Unicast(dst, d); err != nil && n.trSendErrs == nil {
				n.sendErrs.Add(1)
			}
		}
		c.Reset()
	}
	n.coDests = n.coDests[:0]
}

// armFlushTimer schedules the slot-edge flush backstop (event-loop
// context, SlotBatch mode): if no timer-path event flushes first, the
// pending frames ship when the current wheel slot ends. One armed
// timer at a time; a timer-path flush before the edge leaves it to
// fire as a harmless empty flush.
func (n *Node) armFlushTimer() {
	if n.flushArmed {
		return
	}
	n.flushArmed = true
	now := model.Time(time.Now().UnixMicro())
	edge := n.params.SlotStart(now).Add(n.params.SlotLen())
	delay := time.Duration(edge-now) * time.Microsecond
	if delay < 0 {
		delay = 0
	}
	due := time.Now().Add(delay)
	n.mu.Lock()
	if !n.stopped {
		n.flushTimer = time.AfterFunc(delay, func() { n.postFlush(due) })
	}
	n.mu.Unlock()
}

// postFlush posts the slot-edge flush event. Like postTimer it must not
// be lost to a full queue — stranded frames would sit until the next
// reactive event — so it retries on a short backoff, keeping the
// original deadline.
func (n *Node) postFlush(due time.Time) {
	if n.post(engine.Event{Type: engine.EvCommand, Cmd: n.onFlushTimer, Due: due}) {
		return
	}
	n.mu.Lock()
	stopped := n.stopped
	n.mu.Unlock()
	if !stopped {
		time.AfterFunc(time.Millisecond, func() { n.postFlush(due) })
	}
}

// onFlushTimer runs in the event loop. The flush itself happens in
// handle(): the event carries Due, so it takes the timer path.
func (n *Node) onFlushTimer() {
	n.flushArmed = false
	n.obs.slotbatchFlushes.Inc()
}

func (e *nodeEnv) SetTimer(id member.TimerID, at model.Time) {
	n := (*Node)(e)
	delay := time.Duration(at-e.Now()) * time.Microsecond
	if delay < 0 {
		delay = 0
	}
	due := time.Now().Add(delay)
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.timers[id]; ok {
		old.Stop()
	}
	if n.stopped {
		return
	}
	n.timers[id] = time.AfterFunc(delay, func() {
		n.postTimer(id, due)
	})
}

// postTimer posts a timer firing, stamped with its armed deadline for
// lateness accounting. Unlike messages, a timer must not be lost to a
// full queue: the slot schedule re-arms only from its own handler, so a
// dropped TimerSlot would silence the node permanently. Retry on a
// short backoff until the queue drains or the node stops; the original
// deadline is kept, so the guard sees the true lateness.
func (n *Node) postTimer(id member.TimerID, due time.Time) {
	if n.post(engine.Event{Type: engine.TypeOfTimer(id), Timer: id, Due: due}) {
		return
	}
	n.mu.Lock()
	stopped := n.stopped
	n.mu.Unlock()
	if !stopped {
		time.AfterFunc(time.Millisecond, func() { n.postTimer(id, due) })
	}
}

func (e *nodeEnv) CancelTimer(id member.TimerID) {
	n := (*Node)(e)
	n.mu.Lock()
	defer n.mu.Unlock()
	if t, ok := n.timers[id]; ok {
		t.Stop()
		delete(n.timers, id)
	}
}

// --- Transport constructors ---------------------------------------------------

// HubConfig shapes the in-memory hub's fault model (at parity with the
// simulator's: delay, loss, duplication, corruption, reordering).
type HubConfig struct {
	MinDelay, MaxDelay time.Duration
	DropProb           float64
	DupProb            float64
	CorruptProb        float64
	ReorderProb        float64
	Seed               int64
}

// MemoryHub connects in-process nodes (tests, demos, examples).
type MemoryHub struct{ hub *transport.Hub }

// NewMemoryHub creates an in-process datagram switchboard.
func NewMemoryHub(cfg HubConfig) *MemoryHub {
	return &MemoryHub{hub: transport.NewHub(transport.HubOptions{
		MinDelay:    cfg.MinDelay,
		MaxDelay:    cfg.MaxDelay,
		DropProb:    cfg.DropProb,
		DupProb:     cfg.DupProb,
		CorruptProb: cfg.CorruptProb,
		ReorderProb: cfg.ReorderProb,
		Seed:        cfg.Seed,
	})}
}

// Transport returns the hub port for node id.
func (h *MemoryHub) Transport(id int) Transport {
	return memAdapter{h.hub.Attach(model.ProcessID(id))}
}

// Close shuts the hub down.
func (h *MemoryHub) Close() { h.hub.Close() }

type memAdapter struct{ t *transport.MemTransport }

func (a memAdapter) Broadcast(data []byte) error { return a.t.Broadcast(data) }
func (a memAdapter) Unicast(to int, data []byte) error {
	return a.t.Unicast(model.ProcessID(to), data)
}
func (a memAdapter) SetReceiver(r func([]byte)) { a.t.SetReceiver(r) }
func (a memAdapter) Close() error               { return a.t.Close() }

// NewUDPTransport binds a UDP socket for node id; addrs maps every node
// ID to "host:port".
func NewUDPTransport(id int, addrs map[int]string) (Transport, error) {
	m := make(map[model.ProcessID]string, len(addrs))
	for k, v := range addrs {
		m[model.ProcessID(k)] = v
	}
	u, err := transport.NewUDP(model.ProcessID(id), m)
	if err != nil {
		return nil, err
	}
	return &udpAdapter{u: u}, nil
}

type udpAdapter struct {
	u     *transport.UDP
	batch []transport.BatchMsg // reused across SendBatch calls
}

func (a *udpAdapter) Broadcast(data []byte) error { return a.u.Broadcast(data) }
func (a *udpAdapter) Unicast(to int, data []byte) error {
	return a.u.Unicast(model.ProcessID(to), data)
}
func (a *udpAdapter) SetReceiver(r func([]byte)) { a.u.SetReceiver(r) }
func (a *udpAdapter) Close() error               { return a.u.Close() }

// SendBatch implements BatchSender over the UDP transport's
// sendmmsg-batched path. Safe for the single event-loop caller the
// node contract gives it (the scratch slice is per-adapter).
func (a *udpAdapter) SendBatch(msgs []BatchMessage) error {
	b := a.batch[:0]
	for i := range msgs {
		b = append(b, transport.BatchMsg{To: model.ProcessID(msgs[i].To), Data: msgs[i].Data})
	}
	a.batch = b
	return a.u.SendBatch(b)
}

// SendErrors exposes the transport's failed-send count for the
// timewheel_transport_send_errors_total metric.
func (a *udpAdapter) SendErrors() uint64 { return a.u.SendErrors() }

// --- Chaos middleware ----------------------------------------------------------

// ChaosConfig shapes the seed-driven chaos middleware's random per-link
// fault mix. Partitions, link flapping and nemesis schedules are
// available on the internal API (internal/transport); this public
// surface covers demos and soak runs over any Transport — memory hub
// and UDP alike.
type ChaosConfig struct {
	Seed               int64
	MinDelay, MaxDelay time.Duration
	// DropProb, DupProb, CorruptProb, ReorderProb are independent
	// per-frame probabilities applied on the receiving side of each
	// wrapped transport.
	DropProb    float64
	DupProb     float64
	CorruptProb float64
	ReorderProb float64
}

// ChaosNet is a chaos controller shared by the wrapped transports of
// one cluster: one seed, one fault mix, one stats block.
type ChaosNet struct{ net *transport.ChaosNet }

// NewChaosNet creates a chaos controller.
func NewChaosNet(cfg ChaosConfig) *ChaosNet {
	return &ChaosNet{net: transport.NewChaosNet(cfg.Seed, transport.Faults{
		MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
		Drop: cfg.DropProb, Duplicate: cfg.DupProb,
		Corrupt: cfg.CorruptProb, Reorder: cfg.ReorderProb,
	})}
}

// Wrap interposes the chaos middleware on node id's transport; hand the
// returned Transport to NewNode in place of t.
func (c *ChaosNet) Wrap(id int, t Transport) Transport {
	return chaosOuter{c.net.Wrap(chaosInner{t: t, id: model.ProcessID(id)})}
}

// ChaosStats counts the faults the middleware has injected so far.
type ChaosStats struct {
	Delivered  uint64 // frames passed through (possibly delayed)
	Dropped    uint64 // frames discarded by the drop probability
	Blocked    uint64 // frames discarded by an active partition
	Duplicated uint64 // extra copies injected
	Corrupted  uint64 // frames with flipped bits
	Reordered  uint64 // frames held back past their successors

	// Sender-side stage (SetSendFaults): whole datagrams affected
	// before a broadcast fans out.
	SendDropped   uint64
	SendDelivered uint64

	// Bandwidth-shaping stage (SetRate).
	Shaped     uint64        // datagrams held back by an empty token bucket
	ShapeDelay time.Duration // cumulative queueing delay the shaper added
}

// Stats snapshots the cluster-wide fault counters.
func (c *ChaosNet) Stats() ChaosStats {
	s := c.net.Stats()
	return ChaosStats{
		Delivered: s.Delivered, Dropped: s.Dropped, Blocked: s.Blocked,
		Duplicated: s.Duplicated, Corrupted: s.Corrupted, Reordered: s.Reordered,
		SendDropped: s.SendDropped, SendDelivered: s.SendDelivered,
		Shaped: s.Shaped, ShapeDelay: s.ShapeDelay,
	}
}

// SetRate caps node id's sustained outbound throughput at bytesPerSec
// with up to burst bytes of slack (burst <= 0 defaults to one second's
// worth); bytesPerSec <= 0 removes the limit. The token bucket's
// queueing delay composes with the sender-side fault mix and the
// receive-side faults, so a rate-limited jittery link — slow but
// healthy — is expressible for the adaptive-timeout soaks.
func (c *ChaosNet) SetRate(id int, bytesPerSec, burst int64) {
	c.net.SetRate(model.ProcessID(id), bytesPerSec, burst)
}

// SetSendFaults installs a sender-side fault mix for node id's outgoing
// datagrams, applied once per send before a broadcast fans out —
// congestion at the sender's NIC, the asymmetric half of a one-way
// degraded link (the receive-side mix is the other half).
func (c *ChaosNet) SetSendFaults(id int, cfg ChaosConfig) {
	c.net.SetSendFaults(model.ProcessID(id), transport.Faults{
		MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
		Drop: cfg.DropProb, Duplicate: cfg.DupProb,
		Corrupt: cfg.CorruptProb, Reorder: cfg.ReorderProb,
	})
}

// ClearSendFaults removes node id's sender-side fault mix.
func (c *ChaosNet) ClearSendFaults(id int) {
	c.net.ClearSendFaults(model.ProcessID(id))
}

// Heal removes any active link blocks (the per-frame fault mix keeps
// running).
func (c *ChaosNet) Heal() { c.net.Heal() }

// chaosInner lifts a public Transport to the internal interface (which
// additionally knows its own process ID).
type chaosInner struct {
	t  Transport
	id model.ProcessID
}

func (a chaosInner) Self() model.ProcessID            { return a.id }
func (a chaosInner) Broadcast(data []byte) error      { return a.t.Broadcast(data) }
func (a chaosInner) SetReceiver(r transport.Receiver) { a.t.SetReceiver(r) }
func (a chaosInner) Close() error                     { return a.t.Close() }
func (a chaosInner) Unicast(to model.ProcessID, data []byte) error {
	return a.t.Unicast(int(to), data)
}

// chaosOuter adapts the wrapped transport back to the public interface.
type chaosOuter struct{ c *transport.Chaos }

func (a chaosOuter) Broadcast(data []byte) error { return a.c.Broadcast(data) }
func (a chaosOuter) Unicast(to int, data []byte) error {
	return a.c.Unicast(model.ProcessID(to), data)
}
func (a chaosOuter) SetReceiver(r func([]byte)) { a.c.SetReceiver(r) }
func (a chaosOuter) Close() error               { return a.c.Close() }
