GO ?= go

.PHONY: all test race bench benchplot fuzz vet fmt experiments fsm examples dashboard-check clean

all: vet test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./... ./rsm

bench:
	$(GO) test -bench=. -benchmem ./...

benchplot:
	$(GO) run ./scripts -dir . -out bench_trajectory.svg

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzSplitGrouped -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzGossipRoundTrip -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzRecord -fuzztime=30s ./internal/durable
	$(GO) test -fuzz=FuzzSnapshotBody -fuzztime=30s ./internal/durable
	$(GO) test -fuzz=FuzzRecoverScan -fuzztime=30s ./internal/durable

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

experiments:
	$(GO) run ./cmd/twbench

fsm:
	$(GO) run ./cmd/twfsm

dashboard-check:
	$(GO) run ./cmd/twdashcheck docs/grafana/timewheel.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/replicated-counter
	$(GO) run ./examples/partition-healing
	$(GO) run ./examples/fail-aware
	$(GO) run ./examples/udp-cluster

clean:
	$(GO) clean -testcache
