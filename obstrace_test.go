package timewheel

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"timewheel/internal/trace"
)

// The live half of the twtrace pipeline: a real (in-memory transport)
// cluster's /debug/events output must merge into a causally-clean
// timeline — every control-message receive matched to its send via the
// v7 causal context, zero ordering violations, deliveries present.
func TestDebugEventsMergeCausallyClean(t *testing.T) {
	defer tracer.EnableRing()()

	nodes, recs, stop := startCluster(t, 3)
	defer stop()

	for i := 0; i < 3; i++ {
		if err := nodes[i].Propose([]byte{byte('a' + i)}, TotalOrder, Strong); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, r := range recs {
			if r.deliveryCount() < 3 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("proposals never delivered everywhere")
		}
		time.Sleep(5 * time.Millisecond)
	}

	srv, err := nodes[0].ServeObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Truncated bool              `json:"truncated"`
		Dropped   uint64            `json:"dropped"`
		Events    []trace.EventJSON `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}

	// All in-process nodes share one ring, so this single endpoint
	// carries the whole cluster; Event.Node keeps emitters apart.
	hops := trace.HopsFromJSON(doc.Events)
	seen := map[int32]bool{}
	for _, h := range hops {
		seen[h.Node] = true
	}
	if len(seen) != 3 {
		t.Fatalf("hops cover nodes %v, want all 3", seen)
	}

	// Same-host clocks: any ε accepts, none is needed.
	tl := trace.MergeCluster([][]trace.Hop{hops}, int64(time.Millisecond), doc.Truncated || doc.Dropped > 0)
	if len(tl.Violations) != 0 {
		for _, v := range tl.Violations {
			t.Errorf("violation: %s", v.Text)
		}
		t.Fatalf("%d causal-ordering violations", len(tl.Violations))
	}
	if len(tl.Edges) == 0 {
		t.Fatal("no cross-node edges resolved from /debug/events")
	}
	var delivers int
	for _, h := range tl.Hops {
		if h.Dir == trace.HopDeliver {
			delivers++
		}
	}
	if delivers < 9 { // 3 proposals × 3 nodes
		t.Fatalf("delivers = %d, want >= 9", delivers)
	}
}
