package timewheel

import (
	"fmt"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTimerLatenessBothEngines verifies the lateness accounting the
// guard builds on works under both event demultiplexers: a stall on the
// event goroutine makes the timers armed behind it dispatch late, and
// the guard counts the overrun and the late timers. Observe-only mode:
// nothing is suppressed, the node keeps running.
func TestTimerLatenessBothEngines(t *testing.T) {
	for _, eng := range []string{"loop", "threaded"} {
		eng := eng
		t.Run(eng, func(t *testing.T) {
			node, err := NewNode(Config{
				ID: 0, ClusterSize: 1,
				Transport: NewMemoryHub(HubConfig{}).Transport(0),
				Params:    fastParams(),
				Engine:    eng,
				Guard: GuardConfig{
					Enabled:         true,
					HandlerBudget:   20 * time.Millisecond,
					TimerLateBudget: 20 * time.Millisecond,
					// Observe-only, and a trip threshold the stall will
					// cross — asserting the latch without self-exclusion.
					TripCount: 2, TripWindow: time.Second,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer node.Stop()
			node.Start()
			waitFor(t, 10*time.Second, "singleton formation", func() bool {
				_, ok := node.CurrentView()
				return ok
			})

			node.InjectStall(150 * time.Millisecond)
			// GuardStats must stay readable mid-stall (atomics, no
			// event-loop round trip).
			done := make(chan GuardStats, 1)
			go func() { done <- node.GuardStats() }()
			select {
			case <-done:
			case <-time.After(100 * time.Millisecond):
				t.Fatalf("GuardStats blocked during a stall")
			}

			waitFor(t, 10*time.Second, "overrun+late timers counted", func() bool {
				s := node.GuardStats()
				return s.Overruns >= 1 && s.LateTimers >= 1 && s.Tripped
			})
			if s := node.GuardStats(); s.SelfExclusions != 0 || s.SuppressedSends != 0 {
				t.Fatalf("observe-only guard acted: %+v", s)
			}
			// The singleton keeps running (its own slot timers still fire).
			waitFor(t, 10*time.Second, "still operating after stall", func() bool {
				_, ok := node.CurrentView()
				return ok
			})
		})
	}
}

// TestStallSelfExclusionAndWarmRejoin is the end-to-end enforcement
// path: a 3-node durable cluster, one member's event goroutine stalls
// far past every budget, its guard trips, it self-excludes (drops to
// join, goes silent) and rejoins warm — the group serving it a replay
// delta rather than a full state transfer, because its join advertised
// the coverage preserved across the self-exclusion.
func TestStallSelfExclusionAndWarmRejoin(t *testing.T) {
	const n = 3
	hub := NewMemoryHub(HubConfig{MaxDelay: 300 * time.Microsecond, Seed: 7})
	defer hub.Close()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		var err error
		nodes[i], err = NewNode(Config{
			ID: i, ClusterSize: n,
			Transport: hub.Transport(i),
			Params:    fastParams(),
			DataDir:   fmt.Sprintf("%s/node-%d", t.TempDir(), i),
			Fsync:     "none",
			Guard: GuardConfig{
				Enabled: true,
				// Loaded hosts (race detector, parallel packages) see
				// real >25ms scheduling lateness on healthy nodes; a
				// spurious trip on a second node costs the majority, the
				// group re-forms under a new lineage, and the victim's
				// old-lineage coverage can then only be served as a full
				// transfer. 100ms keeps healthy nodes quiet while the
				// 400ms stall still trips the victim deterministically.
				HandlerBudget:   100 * time.Millisecond,
				TimerLateBudget: 100 * time.Millisecond,
				TripCount:       2,
				TripWindow:      2 * time.Second,
				Enforce:         true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()
	fullView := func(nd *Node) bool {
		v, ok := nd.CurrentView()
		return ok && len(v.Members) == n
	}
	waitFor(t, 15*time.Second, "formation", func() bool {
		for _, nd := range nodes {
			if !fullView(nd) {
				return false
			}
		}
		return true
	})

	// Put some deliveries on the books so the victim has real coverage
	// to advertise when it rejoins.
	for i := 0; i < 5; i++ {
		if err := nodes[0].Propose([]byte(fmt.Sprintf("u%d", i)), TotalOrder, Strong); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "pre-stall deliveries", func() bool {
		return nodes[2].Metrics().Delivered >= 5
	})

	victim := nodes[2]
	victim.InjectStall(400 * time.Millisecond)

	waitFor(t, 15*time.Second, "guard-triggered self-exclusion", func() bool {
		return victim.GuardStats().SelfExclusions >= 1
	})
	waitFor(t, 30*time.Second, "victim rejoined", func() bool {
		for _, nd := range nodes {
			if !fullView(nd) {
				return false
			}
		}
		return true
	})

	// Warm rejoin: some current member served a delta (not a full
	// snapshot) because the victim's join advertised its coverage.
	var deltas uint64
	for _, nd := range nodes {
		deltas += nd.Metrics().StateDeltas
	}
	if deltas == 0 {
		t.Fatalf("victim rejoined via full transfer; want a warm delta")
	}
	if ms := victim.Metrics(); ms.SelfExclusions == 0 {
		t.Fatalf("machine-level self-exclusion counter not bumped: %+v", ms)
	}
}
